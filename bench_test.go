package fpgavirtio_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	fpgavirtio "fpgavirtio"
)

// The benchmarks regenerate the paper's evaluation artifacts. Each
// iteration is one simulated round trip; the benchmark's ns/op is the
// host cost of simulating it, while the reported "sim-us/op" (and tail
// metrics) are the simulated latencies the paper's figures plot. Run
// with:
//
//	go test -bench=. -benchmem
//
// For the paper's full 50,000-packet statistics use cmd/fvbench.

var paperPayloads = []int{64, 128, 256, 512, 1024}

func reportSim(b *testing.B, samples []time.Duration) {
	if len(samples) == 0 {
		return
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	b.ReportMetric(float64(sum.Nanoseconds())/float64(len(samples))/1000, "sim-us/op")
}

func pctOf(samples []time.Duration, p float64) time.Duration {
	sorted := append([]time.Duration{}, samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// BenchmarkFig3RoundTrip regenerates the Figure 3 grid: round-trip
// latency for both drivers across the paper's payload sweep.
func BenchmarkFig3RoundTrip(b *testing.B) {
	for _, payload := range paperPayloads {
		payload := payload
		b.Run(fmt.Sprintf("virtio-%d", payload), func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, payload)
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rtt, err := ns.Ping(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, rtt)
			}
			reportSim(b, samples)
		})
		b.Run(fmt.Sprintf("xdma-%d", payload), func(b *testing.B) {
			xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			// Same bytes on the link as the VirtIO test (payload + headers).
			buf := make([]byte, payload+54)
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rtt, err := xs.RoundTrip(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, rtt)
			}
			reportSim(b, samples)
		})
	}
}

// BenchmarkFig4VirtIOBreakdown regenerates Figure 4: the VirtIO
// software/hardware decomposition per payload.
func BenchmarkFig4VirtIOBreakdown(b *testing.B) {
	for _, payload := range paperPayloads {
		payload := payload
		b.Run(fmt.Sprintf("payload-%d", payload), func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, payload)
			var sw, hw, total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := ns.PingDetailed(buf)
				if err != nil {
					b.Fatal(err)
				}
				sw += s.Software
				hw += s.Hardware
				total += s.Total
			}
			n := float64(b.N)
			b.ReportMetric(float64(sw.Nanoseconds())/n/1000, "sim-sw-us/op")
			b.ReportMetric(float64(hw.Nanoseconds())/n/1000, "sim-hw-us/op")
			b.ReportMetric(float64(total.Nanoseconds())/n/1000, "sim-us/op")
		})
	}
}

// BenchmarkFig5XDMABreakdown regenerates Figure 5: the vendor-driver
// decomposition per payload.
func BenchmarkFig5XDMABreakdown(b *testing.B) {
	for _, payload := range paperPayloads {
		payload := payload
		b.Run(fmt.Sprintf("payload-%d", payload), func(b *testing.B) {
			xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, payload+54)
			var sw, hw, total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := xs.RoundTripDetailed(buf)
				if err != nil {
					b.Fatal(err)
				}
				sw += s.Software
				hw += s.Hardware
				total += s.Total
			}
			n := float64(b.N)
			b.ReportMetric(float64(sw.Nanoseconds())/n/1000, "sim-sw-us/op")
			b.ReportMetric(float64(hw.Nanoseconds())/n/1000, "sim-hw-us/op")
			b.ReportMetric(float64(total.Nanoseconds())/n/1000, "sim-us/op")
		})
	}
}

// BenchmarkTable1Tails regenerates Table I: tail latencies at 95/99/
// 99.9% for both drivers (the 99.9% metric is only meaningful at high
// -benchtime iteration counts).
func BenchmarkTable1Tails(b *testing.B) {
	for _, payload := range []int{64, 1024} {
		payload := payload
		b.Run(fmt.Sprintf("virtio-%d", payload), func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, payload)
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rtt, err := ns.Ping(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, rtt)
			}
			b.ReportMetric(float64(pctOf(samples, 95).Nanoseconds())/1000, "sim-p95-us")
			b.ReportMetric(float64(pctOf(samples, 99).Nanoseconds())/1000, "sim-p99-us")
			b.ReportMetric(float64(pctOf(samples, 99.9).Nanoseconds())/1000, "sim-p999-us")
		})
		b.Run(fmt.Sprintf("xdma-%d", payload), func(b *testing.B) {
			xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 1}})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, payload+54)
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rtt, err := xs.RoundTrip(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, rtt)
			}
			b.ReportMetric(float64(pctOf(samples, 95).Nanoseconds())/1000, "sim-p95-us")
			b.ReportMetric(float64(pctOf(samples, 99).Nanoseconds())/1000, "sim-p99-us")
			b.ReportMetric(float64(pctOf(samples, 99.9).Nanoseconds())/1000, "sim-p999-us")
		})
	}
}

// BenchmarkE5ChecksumOffload regenerates the offload ablation (E5).
func BenchmarkE5ChecksumOffload(b *testing.B) {
	for _, arm := range []struct {
		name    string
		disable bool
	}{{"offloaded", false}, {"software-csum", true}} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
				Config:             fpgavirtio.Config{Seed: 2},
				DisableCsumOffload: arm.disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1024)
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rtt, err := ns.Ping(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, rtt)
			}
			reportSim(b, samples)
		})
	}
}

// BenchmarkE6IRQAblation regenerates the interrupt ablation (E6).
func BenchmarkE6IRQAblation(b *testing.B) {
	b.Run("xdma-favourable", func(b *testing.B) {
		xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 3}})
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 256+54)
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtt, err := xs.RoundTrip(buf)
			if err != nil {
				b.Fatal(err)
			}
			samples = append(samples, rtt)
		}
		reportSim(b, samples)
	})
	b.Run("xdma-realistic", func(b *testing.B) {
		xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{
			Config:       fpgavirtio.Config{Seed: 3},
			WaitC2HReady: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 256+54)
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtt, err := xs.RoundTrip(buf)
			if err != nil {
				b.Fatal(err)
			}
			samples = append(samples, rtt)
		}
		reportSim(b, samples)
	})
}

// BenchmarkE7Bypass measures the host-bypass interface (E7).
func BenchmarkE7Bypass(b *testing.B) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 4, Quiet: true}})
	if err != nil {
		b.Fatal(err)
	}
	samples := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ns.BypassCopy(1024)
		if err != nil {
			b.Fatal(err)
		}
		samples = append(samples, d)
	}
	reportSim(b, samples)
}

// BenchmarkE8Portability measures the other device personalities and
// the Gen3 link (E8).
func BenchmarkE8Portability(b *testing.B) {
	b.Run("console", func(b *testing.B) {
		cs, err := fpgavirtio.OpenConsole(fpgavirtio.Config{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		msg := make([]byte, 256)
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rtt, err := cs.WriteRead(msg)
			if err != nil {
				b.Fatal(err)
			}
			samples = append(samples, rtt)
		}
		reportSim(b, samples)
	})
	b.Run("blk-write-read", func(b *testing.B) {
		bs, err := fpgavirtio.OpenBlk(fpgavirtio.BlkConfig{Config: fpgavirtio.Config{Seed: 5}})
		if err != nil {
			b.Fatal(err)
		}
		sector := make([]byte, 512)
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, err := bs.WriteSector(uint64(i%1024), sector)
			if err != nil {
				b.Fatal(err)
			}
			_, r, err := bs.ReadSector(uint64(i % 1024))
			if err != nil {
				b.Fatal(err)
			}
			samples = append(samples, w+r)
		}
		reportSim(b, samples)
	})
	b.Run("net-gen3x4", func(b *testing.B) {
		ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
			Config: fpgavirtio.Config{Seed: 5, Link: fpgavirtio.Gen3x4},
		})
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 256)
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rtt, err := ns.Ping(buf)
			if err != nil {
				b.Fatal(err)
			}
			samples = append(samples, rtt)
		}
		reportSim(b, samples)
	})
}

// BenchmarkE9EventIdx measures burst signalling under both suppression
// mechanisms (E9).
func BenchmarkE9EventIdx(b *testing.B) {
	for _, arm := range []struct {
		name     string
		eventIdx bool
	}{{"flags", false}, {"event-idx", true}} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
				Config:      fpgavirtio.Config{Seed: 6},
				UseEventIdx: arm.eventIdx,
			})
			if err != nil {
				b.Fatal(err)
			}
			doorbells := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ns.Burst(32, 128)
				if err != nil {
					b.Fatal(err)
				}
				doorbells += res.Doorbells
			}
			b.ReportMetric(float64(doorbells)/float64(b.N*32), "doorbells/pkt")
		})
	}
}

// BenchmarkE10OSProfiles measures the host-profile grid (E10).
func BenchmarkE10OSProfiles(b *testing.B) {
	for _, prof := range []fpgavirtio.HostProfile{
		fpgavirtio.DesktopHost, fpgavirtio.ServerHost, fpgavirtio.RTHost,
	} {
		prof := prof
		b.Run(prof.String(), func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
				Config: fpgavirtio.Config{Seed: 7, Host: prof},
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 256)
			samples := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rtt, err := ns.Ping(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, rtt)
			}
			reportSim(b, samples)
			b.ReportMetric(float64(pctOf(samples, 99.9).Nanoseconds())/1000, "sim-p999-us")
		})
	}
}

// BenchmarkE11Throughput measures pipelined bursts (E11); each iteration
// is one 64-packet burst.
func BenchmarkE11Throughput(b *testing.B) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 8}})
	if err != nil {
		b.Fatal(err)
	}
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ns.Burst(64, 256)
		if err != nil {
			b.Fatal(err)
		}
		elapsed += res.Elapsed
	}
	pktPerSec := float64(b.N*64) / elapsed.Seconds()
	b.ReportMetric(pktPerSec/1000, "sim-kpkts/s")
}

// BenchmarkE12RingFormat measures both virtqueue formats (E12).
func BenchmarkE12RingFormat(b *testing.B) {
	for _, arm := range []struct {
		name   string
		packed bool
	}{{"split", false}, {"packed", true}} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
				Config:        fpgavirtio.Config{Seed: 9},
				UsePackedRing: arm.packed,
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 256)
			samples := make([]time.Duration, 0, b.N)
			var hw time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := ns.PingDetailed(buf)
				if err != nil {
					b.Fatal(err)
				}
				samples = append(samples, s.Total)
				hw += s.Hardware
			}
			reportSim(b, samples)
			b.ReportMetric(float64(hw.Nanoseconds())/float64(b.N)/1000, "sim-hw-us/op")
		})
	}
}
