module fpgavirtio

go 1.22
