package fpgavirtio_test

import (
	"testing"

	fpgavirtio "fpgavirtio"
)

// Steady-state per-packet benchmarks for the series APIs the sweep
// engine drives. One iteration is one round trip inside a warm
// session, so with -benchmem the allocs/op column IS the per-packet
// allocation count — the same quantity alloc_test.go caps at zero.

func BenchmarkPingSeriesSteadyState(b *testing.B) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := ns.PingSeries(buf, 200, nil); err != nil { // warm pools and rings
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := ns.PingSeries(buf, b.N, nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPackedRingSeriesSteadyState(b *testing.B) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config:        fpgavirtio.Config{Seed: 1},
		UsePackedRing: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := ns.PingSeries(buf, 200, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := ns.PingSeries(buf, b.N, nil); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRoundTripSeriesSteadyState(b *testing.B) {
	xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256+54)
	if err := xs.RoundTripSeries(buf, 200, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := xs.RoundTripSeries(buf, b.N, nil); err != nil {
		b.Fatal(err)
	}
}
