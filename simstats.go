package fpgavirtio

import (
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// publishSimStats mirrors the event loop's lifetime counters into the
// session's metric registry. The sim core keeps its stats as plain
// integers (the schedule/fire path is the hottest loop in the tree and
// must not pay instrument indirection), so sessions sync the registry
// to the absolute values after each completed run. Syncing instead of
// accumulating makes the call idempotent: every publish leaves the
// counters equal to sim.Stats(), no per-session delta state needed.
func publishSimStats(s *sim.Sim, reg *telemetry.Registry) {
	st := s.Stats()
	syncCounter(reg.Counter(telemetry.MetricSimEventsScheduled), st.Scheduled)
	syncCounter(reg.Counter(telemetry.MetricSimEventsFired), st.Fired)
	syncCounter(reg.Counter(telemetry.MetricSimEventsCancelled), st.Cancelled)
	reg.Gauge(telemetry.MetricSimQueueDepthMax).Set(float64(st.DepthMax))
}

// syncCounter raises c to the absolute value v (counters are monotonic,
// so a stale publish never rewinds one).
func syncCounter(c *telemetry.Counter, v int64) {
	if d := v - c.Value(); d > 0 {
		c.Add(d)
	}
}
