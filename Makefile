GO ?= go

.PHONY: all build test race vet fmt lint vuln fuzzseed flake ci smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the project's static-analysis suite (ringorder, kickflush,
# metricname, lockorder); it fails on any diagnostic that lacks an
# auditable `//fvlint:ignore <analyzer> <reason>` directive.
lint:
	$(GO) run ./cmd/fvlint -suppressed -root .

# vuln runs govulncheck when the toolchain ships it; absence is not a
# failure so offline/minimal containers still pass ci.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

# fuzzseed replays every fuzz target's committed seed corpus (and any
# saved crashers under testdata/fuzz) as ordinary tests — no -fuzz time
# budget needed, so it is cheap enough for every CI run.
fuzzseed:
	$(GO) test -run '^Fuzz' -v ./internal/virtio ./internal/pcie

# flake runs vet plus the race detector with -count=2: the second pass
# reruns everything with warm caches and different goroutine timings,
# the cheapest way to catch order-dependent or racy tests. The second
# race pass builds with -tags fvinvariants so the runtime ring/doorbell
# assertions (internal/fvassert) are exercised under contention.
flake:
	$(GO) vet ./...
	$(GO) test -race -count=2 ./...
	$(GO) test -race -tags fvinvariants ./...

# smoke runs a tiny fvbench sweep and writes the JSON bench artifact;
# fvbench re-reads and validates the file against the exporter schema,
# so a passing run proves the end-to-end export path.
smoke:
	$(GO) run ./cmd/fvbench -n 200 -payloads 64,256 -json $${TMPDIR:-/tmp}/fvbench-smoke.json fig3 > /dev/null
	$(GO) run ./cmd/fvbench -mode=throughput -packets 200 -sizes 64 -window 8 \
		-json $${TMPDIR:-/tmp}/fvbench-tp-smoke.json -csv $${TMPDIR:-/tmp}/fvbench-tp-smoke.csv > /dev/null
	$(GO) run ./cmd/fvtrace -chrome $${TMPDIR:-/tmp}/fvtrace-smoke.json -summary virtio > /dev/null

ci: build fmt lint vuln fuzzseed flake smoke
	@echo "ci: all checks passed"

clean:
	$(GO) clean ./...
