GO ?= go

.PHONY: all build test race vet fmt ci smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# smoke runs a tiny fvbench sweep and writes the JSON bench artifact;
# fvbench re-reads and validates the file against the exporter schema,
# so a passing run proves the end-to-end export path.
smoke:
	$(GO) run ./cmd/fvbench -n 200 -payloads 64,256 -json $${TMPDIR:-/tmp}/fvbench-smoke.json fig3 > /dev/null
	$(GO) run ./cmd/fvtrace -chrome $${TMPDIR:-/tmp}/fvtrace-smoke.json -summary virtio > /dev/null

ci: vet build fmt race smoke
	@echo "ci: all checks passed"

clean:
	$(GO) clean ./...
