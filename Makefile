GO ?= go

.PHONY: all build test race vet fmt lint vuln fuzzseed flake chaos ci smoke bench benchbase benchcmp benchsmoke simref tailcheck cover coverbase clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the project's static-analysis suite — the per-package
# analyzers (ringorder, metricname, hotalloc) plus the interprocedural
# ones over the whole-module call graph (kickflush, lockorder,
# detsafe), printing the root→site call path under each cross-function
# finding. It fails on any diagnostic that lacks an auditable
# `//fvlint:ignore <analyzer> <reason>` directive, and then audits
# every suppression in the tree: one without a reason fails the build.
lint:
	$(GO) run ./cmd/fvlint -suppressed -why -root .
	$(GO) run ./cmd/fvlint -suppressions -root .

# vuln runs govulncheck when the toolchain ships it; absence is not a
# failure so offline/minimal containers still pass ci.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping"; \
	fi

# fuzzseed replays every fuzz target's committed seed corpus (and any
# saved crashers under testdata/fuzz) as ordinary tests — no -fuzz time
# budget needed, so it is cheap enough for every CI run.
fuzzseed:
	$(GO) test -run '^Fuzz' -v ./internal/virtio ./internal/pcie ./internal/faults

# flake runs vet plus the race detector with -count=2: the second pass
# reruns everything with warm caches and different goroutine timings,
# the cheapest way to catch order-dependent or racy tests. The second
# race pass builds with -tags fvinvariants so the runtime ring/doorbell
# assertions (internal/fvassert) are exercised under contention.
flake:
	$(GO) vet ./...
	$(GO) test -race -count=2 ./...
	$(GO) test -race -tags fvinvariants ./...

# bench runs the sweep and series benchmarks with allocation accounting
# (allocs/op on the steady-state series benchmarks must read 0), then
# times the paper's full 50k-packet Fig-3 matrix serially and through
# the parallel engine. The committed baseline is NOT rewritten here —
# use benchbase for that — so a routine bench run cannot silently move
# the gate.
bench:
	$(GO) test -run '^$$' -bench 'SweepGrid|SeriesSteadyState' -benchmem ./internal/experiments .
	$(GO) run ./cmd/fvsweepbench -n 50000 -json $${TMPDIR:-/tmp}/fvsweepbench-full.json

# benchbase deliberately re-records BENCH_sweep.json at the full grid.
# Run it only when a PR intentionally moves per-packet cost (either
# direction); the diff to BENCH_sweep.json plus benchcmp's printed
# delta are the reviewable record.
benchbase:
	$(GO) run ./cmd/fvsweepbench -n 50000 -json BENCH_sweep.json

# benchcmp re-times the sweep at the baseline's grid and gates the
# serial per-packet cost in both directions: it fails (exit 1) when the
# cost regresses more than 15% against the committed BENCH_sweep.json
# or when the parallel speedup drops below 3x on a host with >= 4 CPUs
# (single-core hosts record speedup but are not judged on it), and on a
# pass it prints the signed improvement delta so wins are auditable and
# re-baselines reviewable.
benchcmp:
	$(GO) run ./cmd/fvsweepbench -n 50000 -check BENCH_sweep.json

# benchsmoke is the cheap ci variant: a small grid proves the bench
# harness, artifact schema, and comparison gate end to end, and its
# -tolerance 2 check against the committed BENCH_sweep.json asserts the
# smoke ns-per-packet stays within 3x of the recorded baseline — a
# catastrophic event-loop regression fails fast even on 1-CPU runners
# where the parallel-speedup gate is skipped. (Small-n runs carry boot
# amortization the 50k baseline doesn't — n=500 keeps the smoke within
# a few percent of steady state, honest headroom inside the 3x budget.)
benchsmoke:
	$(GO) run ./cmd/fvsweepbench -n 500 -payloads 64,256 \
		-json $${TMPDIR:-/tmp}/fvsweepbench-smoke.json \
		-check BENCH_sweep.json -tolerance 2 -minspeedup 0

# simref re-runs the determinism-sensitive suites with the event queue
# swapped for the container/heap reference shim (-tags simrefqueue).
# The root-package replay fingerprint golden must match under both
# builds, proving the calendar queue changes nothing observable.
simref:
	$(GO) test -tags simrefqueue ./internal/sim .

# smoke runs a tiny fvbench sweep and writes the JSON bench artifact;
# fvbench re-reads and validates the file against the exporter schema,
# so a passing run proves the end-to-end export path.
smoke:
	$(GO) run ./cmd/fvbench -n 200 -payloads 64,256 -json $${TMPDIR:-/tmp}/fvbench-smoke.json fig3 > /dev/null
	$(GO) run ./cmd/fvbench -mode=throughput -packets 200 -sizes 64 -window 8 \
		-json $${TMPDIR:-/tmp}/fvbench-tp-smoke.json -csv $${TMPDIR:-/tmp}/fvbench-tp-smoke.csv > /dev/null
	$(GO) run ./cmd/fvtrace -chrome $${TMPDIR:-/tmp}/fvtrace-smoke.json -summary virtio > /dev/null

# tailcheck is the tail-attribution and flight-recorder gate: a faulted
# fvbench sweep must (1) write a schema-valid artifact whose
# tail_attribution block is present (fvbench re-reads and validates the
# JSON, which checks every tail sample's layer sums against its RTT),
# (2) produce flight-recorder post-mortem dumps under -flightdir, and
# (3) keep the steady-state allocation budgets at exactly zero with the
# always-on recorder installed.
tailcheck:
	@dir=$${TMPDIR:-/tmp}/fvbench-tailcheck; rm -rf $$dir; mkdir -p $$dir; \
	$(GO) run ./cmd/fvbench -n 1500 -payloads 64 \
		-faults "needsreset:every=120:count=4,engineerr:every=90:count=4,irqdrop:every=150:count=6,cplpoison:every=400:count=4" \
		-json $$dir/tail.json -flightdir $$dir/flights table1 > /dev/null; \
	grep -q '"tail_attribution"' $$dir/tail.json || { echo "tailcheck: artifact lacks tail_attribution"; exit 1; }; \
	n=$$(ls $$dir/flights/flight_*.json 2>/dev/null | wc -l); \
	[ "$$n" -ge 2 ] || { echo "tailcheck: expected flight dumps in $$dir/flights, found $$n"; exit 1; }; \
	echo "tailcheck: tail_attribution present, $$n flight dumps"
	$(GO) test -run 'SteadyStateZeroAlloc' -v .

# cover is the per-package coverage gate: the full test suite runs with
# statement coverage, fvcover rolls the merged profile up per package,
# writes the coverage summary artifact, and fails if any package under
# internal/drivers/... or internal/sim drops below its committed floor
# in COVERAGE_baseline.json.
cover:
	@dir=$${TMPDIR:-/tmp}/fvcover; mkdir -p $$dir; \
	$(GO) test -count=1 -coverpkg=./... -coverprofile=$$dir/cover.out ./... > /dev/null || exit 1; \
	$(GO) run ./cmd/fvcover -profile $$dir/cover.out \
		-baseline COVERAGE_baseline.json -summary $$dir/coverage_summary.json

# coverbase deliberately re-records the coverage floors (current
# per-package coverage minus a 2-point margin). Run it only when a PR
# intentionally moves coverage; the diff to COVERAGE_baseline.json is
# the reviewable record.
coverbase:
	@dir=$${TMPDIR:-/tmp}/fvcover; mkdir -p $$dir; \
	$(GO) test -count=1 -coverpkg=./... -coverprofile=$$dir/cover.out ./... > /dev/null || exit 1; \
	$(GO) run ./cmd/fvcover -profile $$dir/cover.out \
		-baseline COVERAGE_baseline.json -write

# chaos is the fault-injection soak gate: the full sweep runs under
# the default chaos plan (experiments.DefaultChaosPlan) with the race
# detector and the fvassert recovery invariants compiled in, and must
# complete with at least one recovery of every class — virtio device
# reset, XDMA channel reset, lost-interrupt watchdog — plus
# byte-identical results at any worker count.
chaos:
	$(GO) test -race -tags fvinvariants -run '^TestChaos' -v ./internal/experiments

ci: build fmt vet lint vuln fuzzseed flake chaos cover smoke benchsmoke simref tailcheck
	@echo "ci: all checks passed"

clean:
	$(GO) clean ./...
