// Package fpgavirtio is a simulation-backed reproduction of
// "Performance Evaluation of VirtIO Device Drivers for Host-FPGA PCIe
// Communication" (Bandara et al., IPDPSW 2024).
//
// It models the paper's complete testbed in software — a PCIe Gen2 x2
// link at TLP granularity, the Xilinx XDMA DMA engine, an FPGA-side
// VirtIO controller with net/console/block personalities, and a host
// with kernel driver stacks (the vendor XDMA character-device driver
// and the native virtio-pci/virtio-net front-ends), a UDP/IP network
// stack, interrupt dispatch and scheduler noise — so that the paper's
// latency experiments (Figures 3-5, Table I) can be regenerated
// deterministically on any machine.
//
// The public surface is organised as sessions, one per device
// personality:
//
//   - OpenNet: the paper's main test case — the FPGA as a VirtIO
//     network device echoing UDP packets.
//   - OpenXDMA: the vendor baseline — the XDMA example design driven
//     through read()/write() on character devices.
//   - OpenConsole, OpenBlk: the additional VirtIO device types.
//
// Sessions run the discrete-event simulation internally; all returned
// latencies are simulated time expressed as time.Duration. Every
// session is deterministic for a given Config.Seed.
package fpgavirtio

import (
	"time"

	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/pcie"
	"fpgavirtio/internal/sim"
)

// Link selects the modeled PCIe link.
type Link int

// Supported link profiles.
const (
	// Gen2x2 is the paper's testbed link (Alinx AX7A200, two Gen2 lanes).
	Gen2x2 Link = iota
	// Gen3x4 is the faster profile used by the portability study.
	Gen3x4
)

// String names the link profile.
func (l Link) String() string {
	if l == Gen3x4 {
		return "Gen3 x4"
	}
	return "Gen2 x2"
}

func (l Link) config() pcie.LinkConfig {
	if l == Gen3x4 {
		return pcie.Gen3x4()
	}
	return pcie.DefaultGen2x2()
}

// HostProfile selects the host operating-system cost model — the
// portability axis the paper's conclusion plans to explore ("on
// different operating systems").
type HostProfile int

// Host profiles.
const (
	// DesktopHost is the paper's testbed class (Fedora desktop).
	DesktopHost HostProfile = iota
	// ServerHost is a mitigations-on, quieter server distribution.
	ServerHost
	// RTHost is a PREEMPT_RT-style low-jitter kernel.
	RTHost
)

// String names the profile.
func (h HostProfile) String() string {
	switch h {
	case ServerHost:
		return "server"
	case RTHost:
		return "preempt-rt"
	default:
		return "desktop"
	}
}

// Config is shared testbed configuration. The zero value is the
// paper's setup: Gen2 x2 link, desktop host, noise enabled, seed 0.
type Config struct {
	// Seed makes the run reproducible; equal seeds give identical runs.
	Seed uint64
	// Quiet disables host noise (jitter and preemptions) so latencies
	// are exactly repeatable — useful for debugging, not for
	// reproducing the paper's distributions.
	Quiet bool
	// Link selects the PCIe profile.
	Link Link
	// Host selects the operating-system cost model.
	Host HostProfile
	// Faults arms deterministic fault injection from a plan string (see
	// internal/faults: "class[:p=…][:every=…][:after=…][:count=…]"
	// clauses, comma-separated). Empty means no injection — the default,
	// byte-identical to builds without the fault machinery. Fault draws
	// come from a dedicated fork of the session RNG, so a plan's
	// injections are replayable for a given Seed and do not perturb the
	// host-noise stream.
	Faults string
	// PollMode switches the session's driver stack to its busy-poll
	// datapath: no MSI-X interrupts are armed and completions are
	// discovered by spinning — the virtio-net driver on the used-ring
	// index (EVENT_IDX disabled), the XDMA driver on a host-memory
	// status writeback. The spin loop is costed in simulated time
	// (hostos.DefaultPollPolicy: ~80 ns per empty poll, a ~700 ns
	// yield slot every 64 spins), so poll-mode runs replay exactly
	// like interrupt-mode ones. Latency drops — the IRQ entry,
	// softirq and scheduler-wake segments vanish — at the price of a
	// core burning cycles, which the poll.* metrics quantify.
	PollMode bool
}

func (c Config) hostConfig() hostos.Config {
	var hc hostos.Config
	switch c.Host {
	case ServerHost:
		hc = hostos.ServerConfig()
	case RTHost:
		hc = hostos.RTConfig()
	default:
		hc = hostos.DefaultConfig()
	}
	if c.Quiet {
		hc.JitterSigma = 0
		hc.PreemptMeanGap = 0
		hc.WakeTailProb = 0
	}
	return hc
}

const hostMemBytes = 64 << 20

// toStd converts simulated time to a time.Duration (nanoseconds).
func toStd(d sim.Duration) time.Duration {
	return time.Duration(int64(d / sim.Nanosecond))
}

// RTTSample is one round trip's measured decomposition, following the
// paper's methodology: Total is what the application's
// clock_gettime-based timer saw; Hardware is the FPGA performance
// counters' share (8 ns resolution); RespGen is the user logic's
// response-generation time (deducted, per §IV-B); Software is the
// remainder attributed to the driver and OS stack.
type RTTSample struct {
	Total    time.Duration
	Hardware time.Duration
	RespGen  time.Duration
	Software time.Duration
}

// BusStats summarizes an endpoint's bus traffic.
type BusStats struct {
	DownTLPs   int
	UpTLPs     int
	DownBytes  int64
	UpBytes    int64
	Interrupts int
}
