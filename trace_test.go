package fpgavirtio

import (
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// TestTraceTruncationReported: when the tracer's event cap fires, the
// capture says so explicitly — DroppedEvents counts the overflow and
// the Events slice holds exactly the cap.
func TestTraceTruncationReported(t *testing.T) {
	tr := &sim.RecordingTracer{Max: 3}
	for i := 0; i < 10; i++ {
		tr.Event(sim.Time(i), "ev")
	}
	trace := buildTrace(tr, telemetry.NewRecorder(0))
	if len(trace.Events) != 3 {
		t.Errorf("kept %d events, want the cap of 3", len(trace.Events))
	}
	if trace.DroppedEvents != 7 {
		t.Errorf("DroppedEvents = %d, want 7", trace.DroppedEvents)
	}
}

// TestTraceOpenSpansReported: a span begun but never closed (the shape
// an error path leaves behind) surfaces in OpenSpans rather than
// silently vanishing from the capture.
func TestTraceOpenSpansReported(t *testing.T) {
	rec := telemetry.NewRecorder(0)
	done := rec.SpanBegin(0, telemetry.LayerDriver, "xmit")
	rec.SpanBegin(sim.Time(5), telemetry.LayerPCIe, "mmio") // leaked
	rec.SpanEnd(sim.Time(10), done)
	trace := buildTrace(&sim.RecordingTracer{}, rec)
	if trace.OpenSpans != 1 {
		t.Errorf("OpenSpans = %d, want 1", trace.OpenSpans)
	}
	if len(trace.Spans) != 1 || trace.Spans[0].Name != "xmit" {
		t.Errorf("closed spans = %+v, want just xmit", trace.Spans)
	}
}

// TestTraceCriticalPath: the microscope view agrees with itself — the
// critical path of a captured round trip partitions the app span
// exactly and touches the layers the trace shows.
func TestTraceCriticalPath(t *testing.T) {
	for _, path := range []string{"virtio", "xdma"} {
		t.Run(path, func(t *testing.T) {
			var trace *Trace
			var err error
			cfg := Config{Seed: 1, Quiet: true}
			if path == "virtio" {
				trace, err = TraceNet(NetConfig{Config: cfg}, 256)
			} else {
				trace, err = TraceXDMA(XDMAConfig{Config: cfg}, 310)
			}
			if err != nil {
				t.Fatalf("trace: %v", err)
			}
			cp, err := trace.CriticalPath()
			if err != nil {
				t.Fatalf("CriticalPath: %v", err)
			}
			var sum sim.Duration
			for _, st := range cp.Layers {
				sum += st.Total
			}
			if sum != cp.Total() {
				t.Errorf("layer totals %v != root window %v", sum, cp.Total())
			}
			if len(cp.Layers) < 4 {
				t.Errorf("critical path touches only %d layers; a full round trip crosses more", len(cp.Layers))
			}
			// Every critical-path layer must exist in the capture.
			have := map[string]bool{}
			for _, l := range trace.Layers() {
				have[l] = true
			}
			for _, st := range cp.Layers {
				if !have[st.Layer] {
					t.Errorf("critical path charges layer %q absent from the capture", st.Layer)
				}
			}
		})
	}
}

// TestTraceCriticalPathNeedsApp: filtering the app layer away makes
// attribution impossible, and the error says so.
func TestTraceCriticalPathNeedsApp(t *testing.T) {
	trace, err := TraceNet(NetConfig{Config: Config{Seed: 1, Quiet: true}}, 64)
	if err != nil {
		t.Fatalf("TraceNet: %v", err)
	}
	filtered := trace.FilterLayers(telemetry.LayerDriver, telemetry.LayerWire)
	if _, err := filtered.CriticalPath(); err == nil || !strings.Contains(err.Error(), "app") {
		t.Fatalf("CriticalPath after dropping app = %v, want app-span error", err)
	}
}
