package fpgavirtio

import (
	"fmt"
	"time"

	"fpgavirtio/internal/drivers/virtionet"
	"fpgavirtio/internal/faults"
	"fpgavirtio/internal/fvassert"
	"fpgavirtio/internal/hostos"
	"fpgavirtio/internal/netstack"
	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
	"fpgavirtio/internal/vdev"
	"fpgavirtio/internal/virtio"
)

// NetConfig configures a VirtIO network-device session. The zero value
// (plus any Config) reproduces the paper's setup: checksum offload and
// control queue offered and accepted, echo user logic.
type NetConfig struct {
	Config
	// DisableCsumOffload removes NET_F_CSUM/GUEST_CSUM from the device
	// offer (the E5 ablation).
	DisableCsumOffload bool
	// DisableCtrlVQ removes the control queue.
	DisableCtrlVQ bool
	// QueueSize overrides the virtqueue size (default 256).
	QueueSize int
	// RXBuffers overrides the driver's pre-posted buffer count.
	RXBuffers int
	// TxInterrupts re-enables per-packet TX completion interrupts (the
	// E6 ablation); by default the driver suppresses them and reclaims
	// on the next transmit, like the kernel.
	TxInterrupts bool
	// UseEventIdx offers and negotiates VIRTIO_F_RING_EVENT_IDX:
	// index-threshold interrupt/doorbell suppression, which batches
	// notifications under bursty load.
	UseEventIdx bool
	// UsePackedRing offers and negotiates VIRTIO_F_RING_PACKED: the
	// single-ring descriptor format that halves the device's per-chain
	// bus reads relative to the split format.
	UsePackedRing bool
	// QueuePairs exposes and activates that many RX/TX queue pairs
	// (default 1) via VIRTIO_NET_F_MQ; the throughput mode's multi-queue
	// configuration. More than one pair requires the control queue.
	QueuePairs int
	// TxKickBatch defers TX doorbells until that many packets have been
	// queued since the last kick — driver-side descriptor batching for
	// windowed streaming. 0 or 1 kicks per packet.
	TxKickBatch int
	// ForceKicks disables every doorbell elision (device hints, event
	// thresholds, batching): the suppression-off arm of the throughput
	// comparison.
	ForceKicks bool
	// IRQCoalescePkts holds device interrupts until that many
	// completions accumulate on a queue (or the coalesce timer fires).
	// 0 or 1 interrupts per the ring's usual suppression rules.
	IRQCoalescePkts int
	// IRQCoalesceTimer bounds how long a coalesced interrupt is held
	// (default 15µs when IRQCoalescePkts > 1).
	IRQCoalesceTimer time.Duration
}

// Well-known addresses of the session's two-node network.
var (
	hostIP  = netstack.IP(10, 0, 0, 1)
	fpgaIP  = netstack.IP(10, 0, 0, 2)
	fpgaMAC = netstack.MAC{0x02, 0xfb, 0x0a, 0x00, 0x00, 0x02}
)

// appPort and echoPort are the UDP ports of the test flow.
const (
	appPort  = 47000
	echoPort = 7 // the classic echo service
)

// NetSession is a booted VirtIO-net testbed: host, FPGA network device
// with echo user logic, bound driver, configured routes/ARP, and an
// open UDP socket.
type NetSession struct {
	s      *sim.Sim
	host   *hostos.Host
	stack  *netstack.Stack
	dev    *vdev.NetDevice
	drv    *virtionet.Device
	sock   *netstack.UDPSocket
	faults *faults.Injector
	flight *flightWatch
	// pollFn is the busy-poll hook bound once at boot in poll mode
	// (nil otherwise): it spins the driver's RX path under the poll
	// policy until the socket has a deliverable datagram. Binding at
	// boot keeps the per-packet path allocation-free.
	pollFn func(p *sim.Proc)
}

// OpenNet boots a network-device session: attach the FPGA, enumerate,
// probe the virtio-net driver, add the route and ARP entries the paper
// describes, and bind the test socket.
func OpenNet(cfg NetConfig) (*NetSession, error) {
	plan, err := faults.Parse(cfg.Faults)
	if err != nil {
		return nil, err
	}
	s := sim.New()
	h := hostos.New(s, hostMemBytes, cfg.hostConfig(), cfg.Seed)
	// Arm fault injection before the device attaches so the endpoint
	// sees the injector from its first TLP. The injector draws from its
	// own fork of the seed, leaving the host-noise stream untouched.
	inj := faults.NewInjector(plan, sim.NewRNG(cfg.Seed).Fork("faults"), h.Metrics())
	h.RC.SetFaults(inj)
	dev := vdev.NewNet(s, h.RC, "fpga-vnet", vdev.NetOptions{
		Link:             cfg.Link.config(),
		MAC:              fpgaMAC,
		OfferCsum:        !cfg.DisableCsumOffload,
		OfferCtrlVQ:      !cfg.DisableCtrlVQ,
		OfferEventIdx:    cfg.UseEventIdx,
		OfferPacked:      cfg.UsePackedRing,
		QueuePairs:       cfg.QueuePairs,
		IRQCoalescePkts:  cfg.IRQCoalescePkts,
		IRQCoalesceTimer: sim.Ns(cfg.IRQCoalesceTimer.Nanoseconds()),
	})
	st := netstack.New(h, netstack.DefaultCosts())
	ns := &NetSession{s: s, host: h, stack: st, dev: dev, faults: inj}
	// Always-on flight recorder: installed before boot so the ring
	// already holds context when the first trigger fires. Rides the
	// FlightSink channel, so TracingSpans() stays false and the
	// 0-alloc hot path is unaffected.
	ns.flight = newFlightWatch(s, inj, h.Metrics())

	var bootErr error
	booted := false
	s.Go("boot", func(p *sim.Proc) {
		defer s.Stop()
		infos := h.RC.Enumerate(p)
		if len(infos) != 1 {
			bootErr = fmt.Errorf("fpgavirtio: enumerated %d devices, want 1", len(infos))
			return
		}
		opt := virtionet.DefaultOptions("eth-fpga")
		opt.WantCsum = !cfg.DisableCsumOffload
		opt.WantCtrlVQ = !cfg.DisableCtrlVQ
		opt.QueueSize = cfg.QueueSize
		opt.RXBuffers = cfg.RXBuffers
		opt.SuppressTxInterrupts = !cfg.TxInterrupts
		opt.WantEventIdx = cfg.UseEventIdx
		opt.WantPacked = cfg.UsePackedRing
		opt.QueuePairs = cfg.QueuePairs
		opt.TxKickBatch = cfg.TxKickBatch
		opt.ForceKicks = cfg.ForceKicks
		opt.PollMode = cfg.PollMode
		drv, err := virtionet.Probe(p, h, st, infos[0], opt)
		if err != nil {
			bootErr = err
			return
		}
		ns.drv = drv
		st.AddInterface(drv, hostIP)
		st.AddRoute(netstack.IP(10, 0, 0, 0), netstack.IP(255, 255, 255, 0), "eth-fpga")
		st.AddARP(fpgaIP, fpgaMAC)
		sock, err := st.Bind(appPort)
		if err != nil {
			bootErr = err
			return
		}
		ns.sock = sock
		if cfg.PollMode {
			// Bind the busy-poll hook once: RecvFromPolled invokes it
			// whenever the socket is empty, and it spins the driver's
			// RX drain under the poll policy until a datagram lands.
			// PollYield rides each yield slot for watchdog-less fault
			// detection.
			spinner := drv.Spinner()
			ready := func(p *sim.Proc) bool {
				drv.BusyPoll(p)
				return sock.Pending() > 0
			}
			yield := drv.PollYield
			ns.pollFn = func(p *sim.Proc) { spinner.Spin(p, ready, yield) }
		}
		booted = true
	})
	if err := s.Run(); err != nil {
		return nil, err
	}
	if bootErr != nil {
		return nil, bootErr
	}
	if !booted {
		return nil, fmt.Errorf("fpgavirtio: net session did not boot")
	}
	return ns, nil
}

// run executes fn as an application process and drives the simulation
// until it finishes.
func (ns *NetSession) run(fn func(p *sim.Proc) error) error {
	var opErr error
	done := false
	ns.s.Go("app", func(p *sim.Proc) {
		defer ns.s.Stop()
		opErr = fn(p)
		done = true
	})
	err := ns.s.Run()
	publishSimStats(ns.s, ns.host.Metrics())
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("fpgavirtio: operation did not complete")
	}
	return opErr
}

// Ping sends one UDP packet with the given payload to the FPGA's echo
// service and waits for the reply, returning the echoed payload and
// the application-observed round-trip time.
func (ns *NetSession) Ping(payload []byte) (echo []byte, rtt time.Duration, err error) {
	var sample RTTSample
	echo, sample, err = ns.pingDetailed(payload)
	return echo, sample.Total, err
}

// PingDetailed is Ping plus the paper's latency decomposition from the
// FPGA hardware performance counters.
func (ns *NetSession) PingDetailed(payload []byte) (RTTSample, error) {
	_, sample, err := ns.pingDetailed(payload)
	return sample, err
}

func (ns *NetSession) pingDetailed(payload []byte) ([]byte, RTTSample, error) {
	var echo []byte
	var sample RTTSample
	err := ns.run(func(p *sim.Proc) error {
		var err error
		echo, sample, err = ns.pingOnce(p, payload)
		return err
	})
	return echo, sample, err
}

// PingSeries runs n timed echo exchanges inside one application
// process — the sweep's hot loop. Unlike n separate Ping calls it
// spawns a single process for the whole batch and recycles the echoed
// payload buffers back to the socket, so the steady-state per-packet
// path is allocation-free. sample (optional) receives each round
// trip's index and decomposition as it completes.
func (ns *NetSession) PingSeries(payload []byte, n int, sample func(i int, s RTTSample)) error {
	return ns.run(func(p *sim.Proc) error {
		for i := 0; i < n; i++ {
			echo, s, err := ns.pingOnce(p, payload)
			if err != nil {
				return fmt.Errorf("fpgavirtio: ping %d: %w", i, err)
			}
			ns.sock.Recycle(echo)
			if sample != nil {
				sample(i, s)
			}
		}
		return nil
	})
}

// pingOnce runs one timed echo exchange inside an application process.
// Both the latency mode and the window=1 streaming mode execute exactly
// this sequence, which is what makes their per-packet results agree.
func (ns *NetSession) pingOnce(p *sim.Proc, payload []byte) ([]byte, RTTSample, error) {
	t0 := ns.host.ClockGettime(p)
	// The app span brackets the same instants as the RTT timer, so
	// span-derived totals agree with RTTSample.Total.
	sp := ns.s.BeginSpan(telemetry.LayerApp, "ping")
	if err := ns.sock.SendTo(p, fpgaIP, echoPort, payload); err != nil {
		sp.End()
		return nil, RTTSample{}, err
	}
	if ns.sock.Pending() == 0 {
		// A TxKickBatch driver defers the doorbell; force it before the
		// blocking receive or this lone packet would never reach the
		// device. With batching off FlushTx is a timing no-op, so the
		// latency-mode sequence is unchanged.
		ns.drv.FlushTx(p)
	}
	if fvassert.Enabled && ns.sock.Pending() == 0 && ns.drv.UnkickedTx() > 0 {
		fvassert.Failf("blocking receive with %d batched chains unkicked", ns.drv.UnkickedTx())
	}
	got, err := ns.recv(p)
	if err != nil {
		sp.End()
		return nil, RTTSample{}, err
	}
	t1 := ns.host.ClockGettime(p)
	sp.End()

	total := t1.Sub(t0)
	var hw sim.Duration
	if d, ok := ns.dev.Controller().QueueCounter(vdev.NetQueueTX).TakeLast(); ok {
		hw += d
	}
	if d, ok := ns.dev.Controller().QueueCounter(vdev.NetQueueRX).TakeLast(); ok {
		hw += d
	}
	respGen, _ := ns.dev.RespGenCounter().TakeLast()
	sample := RTTSample{
		Total:    toStd(total),
		Hardware: toStd(hw),
		RespGen:  toStd(respGen),
		Software: toStd(total - hw - respGen),
	}
	ns.flight.note(sample)
	return got, sample, nil
}

// recv is the session's blocking receive: busy-polled in poll mode
// (the spin loop runs inside the recvfrom syscall, SO_BUSY_POLL
// style), wait-queue-blocked otherwise.
func (ns *NetSession) recv(p *sim.Proc) ([]byte, error) {
	if ns.pollFn != nil {
		got, _, _, err := ns.sock.RecvFromPolled(p, ns.pollFn)
		return got, err
	}
	got, _, _, err := ns.sock.RecvFrom(p)
	return got, err
}

// BurstResult summarizes one Burst call's signalling costs.
type BurstResult struct {
	Elapsed    time.Duration
	Doorbells  int // notify MMIO writes during the burst
	Interrupts int // MSI-X messages during the burst
}

// Burst sends count packets back-to-back and then drains all the
// echoes, returning the wall time and the signalling traffic the burst
// generated — the workload where EVENT_IDX-style suppression pays off.
func (ns *NetSession) Burst(count, payloadSize int) (BurstResult, error) {
	var res BurstResult
	payload := make([]byte, payloadSize)
	before := ns.BusStats()
	beforeNotify := ns.dev.Controller().NotifyCount()
	err := ns.run(func(p *sim.Proc) error {
		t0 := ns.host.ClockGettime(p)
		for i := 0; i < count; i++ {
			if err := ns.sock.SendTo(p, fpgaIP, echoPort, payload); err != nil {
				return err
			}
		}
		// Under TxKickBatch a tail of count%batch packets is still
		// unkicked here; the device would never see them and the drain
		// loop below would park forever. Same flush the single-packet
		// path does in pingOnce.
		ns.drv.FlushTx(p)
		if fvassert.Enabled && ns.drv.UnkickedTx() > 0 {
			fvassert.Failf("burst drain starting with %d batched chains unkicked", ns.drv.UnkickedTx())
		}
		for i := 0; i < count; i++ {
			if _, err := ns.recv(p); err != nil {
				return err
			}
		}
		res.Elapsed = toStd(ns.host.ClockGettime(p).Sub(t0))
		// Drain the hardware counters so later PingDetailed calls pair
		// samples correctly.
		ns.dev.Controller().QueueCounter(vdev.NetQueueTX).Reset()
		ns.dev.Controller().QueueCounter(vdev.NetQueueRX).Reset()
		ns.dev.RespGenCounter().Reset()
		return nil
	})
	after := ns.BusStats()
	res.Interrupts = after.Interrupts - before.Interrupts
	res.Doorbells = ns.dev.Controller().NotifyCount() - beforeNotify
	return res, err
}

// SetPromiscuous issues the control-queue promiscuous command.
func (ns *NetSession) SetPromiscuous(on bool) error {
	return ns.run(func(p *sim.Proc) error { return ns.drv.SetPromiscuous(p, on) })
}

// Promiscuous reports the device-side promiscuous state.
func (ns *NetSession) Promiscuous() bool { return ns.dev.Promiscuous() }

// NegotiatedFeatures describes the accepted VirtIO feature bits.
func (ns *NetSession) NegotiatedFeatures() string {
	return ns.dev.Controller().Negotiated().String()
}

// ChecksumOffloaded reports whether NET_F_CSUM was negotiated.
func (ns *NetSession) ChecksumOffloaded() bool {
	return ns.dev.Controller().Negotiated().Has(virtio.NetFCsum)
}

// QueuePairs reports how many virtio-net queue pairs the driver
// negotiated and activated.
func (ns *NetSession) QueuePairs() int { return ns.drv.QueuePairs() }

// Registry returns the session's telemetry metrics registry, holding
// the per-layer instruments every subsystem registered at boot.
func (ns *NetSession) Registry() *telemetry.Registry { return ns.host.Metrics() }

// FaultPlan reports the armed fault plan's canonical string (empty when
// no injection is armed).
func (ns *NetSession) FaultPlan() string {
	if ns.faults == nil {
		return ""
	}
	return ns.faults.Plan().String()
}

// FaultEvents reports the total number of faults injected so far.
func (ns *NetSession) FaultEvents() int64 { return ns.faults.Total() }

// FaultSummary reports per-class injected-fault counts (nil when no
// injection is armed).
func (ns *NetSession) FaultSummary() map[string]int64 { return ns.faults.Summary() }

// FlightDumps returns the post-mortem snapshots the always-on flight
// recorder has taken so far (fault recoveries, new worst-case round
// trips), oldest trigger first.
func (ns *NetSession) FlightDumps() []telemetry.FlightDump { return ns.flight.dumps() }

// CaptureCriticalPaths replays the deterministic ping series up to the
// largest target index and returns the critical-path analysis of each
// targeted round trip. It must be called on a freshly opened session
// with the same config as the measured run: sessions are pure
// functions of their seed, so round trip i here is the same round
// trip i the measurement saw. The span recorder is installed only
// around targeted indices — span emission is a pure recording hook,
// so the replayed timing is identical either way.
func (ns *NetSession) CaptureCriticalPaths(payload []byte, targets []int) ([]CapturedPath, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	want := make(map[int]bool, len(targets))
	maxT := 0
	for _, t := range targets {
		if t < 0 {
			return nil, fmt.Errorf("fpgavirtio: negative capture target %d", t)
		}
		want[t] = true
		if t > maxT {
			maxT = t
		}
	}
	rec := telemetry.NewRecorder(0)
	out := make([]CapturedPath, 0, len(targets))
	err := ns.run(func(p *sim.Proc) error {
		for i := 0; i <= maxT; i++ {
			capture := want[i]
			if capture {
				rec.Reset()
				ns.s.SetSpanSink(rec)
			}
			echo, s, err := ns.pingOnce(p, payload)
			if capture {
				ns.s.SetSpanSink(nil)
			}
			if err != nil {
				return fmt.Errorf("fpgavirtio: replay ping %d: %w", i, err)
			}
			ns.sock.Recycle(echo)
			if capture {
				cp, err := telemetry.AnalyzeCriticalPath(rec.Spans())
				if err != nil {
					return fmt.Errorf("fpgavirtio: replay ping %d: %w", i, err)
				}
				out = append(out, CapturedPath{Index: i, RTT: sim.Ns(s.Total.Nanoseconds()), Path: cp})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BusStats returns the FPGA endpoint's accumulated bus counters.
func (ns *NetSession) BusStats() BusStats {
	st := ns.dev.Controller().EP().Stats()
	out := BusStats{DownBytes: st.DownBytes, UpBytes: st.UpBytes, Interrupts: st.Interrupts}
	for _, n := range st.DownTLPs {
		out.DownTLPs += n
	}
	for _, n := range st.UpTLPs {
		out.UpTLPs += n
	}
	return out
}

// BypassCopy exercises the controller's host-bypass interface: user
// logic copies n bytes from one host buffer to another with no driver
// involvement, returning the fabric-observed duration.
func (ns *NetSession) BypassCopy(n int) (time.Duration, error) {
	src := ns.host.Alloc.Alloc(n, 64)
	dst := ns.host.Alloc.Alloc(n, 64)
	buf := make([]byte, n)
	ns.host.RNG().Bytes(buf)
	ns.host.Mem.Write(src, buf)
	var dur sim.Duration
	err := ns.run(func(p *sim.Proc) error {
		done := sim.NewTrigger(ns.s, "bypass")
		ns.s.Go("fabric-bypass", func(fp *sim.Proc) {
			t0 := fp.Now()
			data := ns.dev.Controller().BypassRead(fp, src, n)
			ns.dev.Controller().BypassWrite(fp, dst, data)
			dur = fp.Now().Sub(t0)
			done.Fire()
		})
		done.Wait(p)
		// Posted writes are still in flight when the fabric releases
		// the data mover; allow them to land before verifying.
		p.Sleep(sim.Us(2))
		got := ns.host.Mem.Read(dst, n)
		for i := range buf {
			if got[i] != buf[i] {
				return fmt.Errorf("fpgavirtio: bypass data mismatch at %d", i)
			}
		}
		return nil
	})
	return toStd(dur), err
}
