package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// CoverSchema identifies the coverage summary / baseline layout.
const CoverSchema = "fvcover/v1"

// PkgCoverage is one package's statement-coverage roll-up.
type PkgCoverage struct {
	Package    string  `json:"package"`
	Statements int     `json:"statements"`
	Covered    int     `json:"covered"`
	Percent    float64 `json:"percent"`
}

// Summary is the machine-readable coverage artifact `make cover`
// leaves next to the bench artifacts.
type Summary struct {
	Schema       string        `json:"schema"`
	Packages     []PkgCoverage `json:"packages"`
	TotalPercent float64       `json:"total_percent"`
}

// Baseline is the committed per-package floor file. A package listed
// here must meet its floor on every `make ci` run; a listed package
// missing from the profile (deleted or renamed without updating the
// baseline) is also a gate failure.
type Baseline struct {
	Schema string             `json:"schema"`
	Floors map[string]float64 `json:"floors"`
}

// coverageByPackage parses a merged `go test -coverprofile` file and
// rolls statement counts up per package (the directory part of each
// block's file path). Blocks for the same source range from different
// test binaries merge by max count, matching `go tool cover` semantics
// closely enough for a floor gate: a statement is covered if any block
// covering it ran.
func coverageByPackage(profile string) ([]PkgCoverage, error) {
	type acc struct{ total, covered int }
	pkgs := map[string]*acc{}
	lines := strings.Split(profile, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "mode:") {
		return nil, fmt.Errorf("cover profile missing mode: header")
	}
	// Merge duplicate blocks (same file:range) first so set-mode
	// profiles from overlapping test runs don't double-count.
	type blockKey struct{ pos string }
	blocks := map[blockKey][2]int{} // numStmts, hitCount(max)
	for i, line := range lines[1:] {
		if line = strings.TrimSpace(line); line == "" {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: malformed block %q", i+2, line)
		}
		numStmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || numStmts < 0 || count < 0 {
			return nil, fmt.Errorf("line %d: malformed counts in %q", i+2, line)
		}
		k := blockKey{fields[0]}
		cur, ok := blocks[k]
		if !ok {
			blocks[k] = [2]int{numStmts, count}
			continue
		}
		if count > cur[1] {
			cur[1] = count
		}
		blocks[k] = cur
	}
	for k, v := range blocks {
		file := k.pos[:strings.LastIndexByte(k.pos, ':')]
		pkg := path.Dir(file)
		a := pkgs[pkg]
		if a == nil {
			a = &acc{}
			pkgs[pkg] = a
		}
		a.total += v[0]
		if v[1] > 0 {
			a.covered += v[0]
		}
	}
	out := make([]PkgCoverage, 0, len(pkgs))
	for pkg, a := range pkgs {
		pc := PkgCoverage{Package: pkg, Statements: a.total, Covered: a.covered}
		if a.total > 0 {
			pc.Percent = 100 * float64(a.covered) / float64(a.total)
		}
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package < out[j].Package })
	return out, nil
}

// gated reports whether pkg falls under one of the baseline prefixes
// (exact package or any subpackage).
func gated(pkg string, prefixes []string) bool {
	for _, pre := range prefixes {
		if pkg == pre || strings.HasPrefix(pkg, pre+"/") {
			return true
		}
	}
	return false
}

func writeSummary(file string, pkgs []PkgCoverage) error {
	s := Summary{Schema: CoverSchema, Packages: pkgs}
	var total, covered int
	for _, pc := range pkgs {
		total += pc.Statements
		covered += pc.Covered
	}
	if total > 0 {
		s.TotalPercent = 100 * float64(covered) / float64(total)
	}
	return writeJSON(file, s)
}

func writeBaseline(file string, pkgs []PkgCoverage, prefixes []string, margin float64) (int, error) {
	b := Baseline{Schema: CoverSchema, Floors: map[string]float64{}}
	for _, pc := range pkgs {
		if !gated(pc.Package, prefixes) {
			continue
		}
		floor := pc.Percent - margin
		if floor < 0 {
			floor = 0
		}
		// Round down to one decimal so the committed file is stable.
		b.Floors[pc.Package] = float64(int(floor*10)) / 10
	}
	if len(b.Floors) == 0 {
		return 0, fmt.Errorf("no packages matched gate prefixes %v", prefixes)
	}
	return len(b.Floors), writeJSON(file, b)
}

func readBaseline(file string) (*Baseline, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", file, err)
	}
	if b.Schema != CoverSchema {
		return nil, fmt.Errorf("baseline %s: schema %q, want %q", file, b.Schema, CoverSchema)
	}
	if len(b.Floors) == 0 {
		return nil, fmt.Errorf("baseline %s: no floors", file)
	}
	return &b, nil
}

// gateAgainst enforces every baseline floor, reporting all failures at
// once so a multi-package regression reads as one actionable list.
func gateAgainst(base *Baseline, pkgs []PkgCoverage) error {
	byPkg := map[string]PkgCoverage{}
	for _, pc := range pkgs {
		byPkg[pc.Package] = pc
	}
	names := make([]string, 0, len(base.Floors))
	for pkg := range base.Floors {
		names = append(names, pkg)
	}
	sort.Strings(names)
	var fails []string
	for _, pkg := range names {
		floor := base.Floors[pkg]
		pc, ok := byPkg[pkg]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: no coverage in profile (floor %.1f%%) — package removed or untested", pkg, floor))
			continue
		}
		if pc.Percent < floor {
			fails = append(fails, fmt.Sprintf("%s: %.1f%% below the %.1f%% floor", pkg, pc.Percent, floor))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("coverage regressed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

func writeJSON(file string, v any) error {
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
