// Command fvcover is the per-package test-coverage gate behind `make
// cover`. It reads a merged Go cover profile, computes statement
// coverage per package, writes a machine-readable summary artifact,
// and — given a committed baseline — fails when any gated package
// drops below its recorded floor.
//
// Regenerating the baseline is a deliberate act (`make coverbase`):
// floors are recorded a small margin below the measured coverage so
// incidental test refactors don't flap the gate, while a deleted test
// file or a large untested addition still trips it.
//
// Flags:
//
//	-profile  merged cover profile from `go test -coverprofile` (required)
//	-baseline baseline JSON with per-package floors; gate mode
//	-summary  write the per-package coverage summary artifact here
//	-write    (re)write -baseline from the profile instead of gating
//	-margin   floor headroom in percentage points for -write (default 2)
//	-gate     comma-separated package prefixes the baseline covers
//	          (default: the driver stacks, the simulation core, and
//	          the static-analysis framework + analyzers)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

const defaultGate = "fpgavirtio/internal/drivers,fpgavirtio/internal/sim,fpgavirtio/internal/analysis"

func main() {
	profile := flag.String("profile", "", "merged cover profile from go test -coverprofile")
	baseline := flag.String("baseline", "", "per-package floor baseline JSON to gate against")
	summary := flag.String("summary", "", "write the coverage summary artifact to this file")
	write := flag.Bool("write", false, "rewrite -baseline from the profile instead of gating")
	margin := flag.Float64("margin", 2, "floor headroom in percentage points when writing the baseline")
	gate := flag.String("gate", defaultGate, "comma-separated package prefixes the baseline covers")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fvcover:", err)
		os.Exit(1)
	}
	if *profile == "" {
		fail(fmt.Errorf("-profile is required"))
	}
	if *write && *baseline == "" {
		fail(fmt.Errorf("-write needs -baseline"))
	}
	if *margin < 0 {
		fail(fmt.Errorf("-margin must be >= 0 (got %g)", *margin))
	}

	data, err := os.ReadFile(*profile)
	if err != nil {
		fail(err)
	}
	pkgs, err := coverageByPackage(string(data))
	if err != nil {
		fail(err)
	}
	if len(pkgs) == 0 {
		fail(fmt.Errorf("profile %s contains no coverage blocks", *profile))
	}
	prefixes := splitPrefixes(*gate)

	if *summary != "" {
		if err := writeSummary(*summary, pkgs); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvcover: wrote %s (%d packages)\n", *summary, len(pkgs))
	}

	switch {
	case *write:
		n, err := writeBaseline(*baseline, pkgs, prefixes, *margin)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvcover: wrote %s (%d package floors, %.1fpt margin)\n", *baseline, n, *margin)
	case *baseline != "":
		base, err := readBaseline(*baseline)
		if err != nil {
			fail(err)
		}
		if err := gateAgainst(base, pkgs); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvcover: %d gated packages at or above their floors\n", len(base.Floors))
	}

	for _, pc := range pkgs {
		fmt.Printf("%-55s %6.1f%%  (%d/%d statements)\n", pc.Package, pc.Percent, pc.Covered, pc.Statements)
	}
}

func splitPrefixes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
