package main

import (
	"strings"
	"testing"
)

const sampleProfile = `mode: set
fpgavirtio/internal/sim/time.go:10.2,12.10 3 1
fpgavirtio/internal/sim/time.go:14.2,20.3 5 0
fpgavirtio/internal/sim/sim.go:30.2,31.5 2 7
fpgavirtio/internal/drivers/xdmadrv/xdmadrv.go:5.1,9.2 4 1
fpgavirtio/internal/drivers/xdmadrv/xdmadrv.go:11.1,15.2 6 0
fpgavirtio/internal/perf/perf.go:8.1,9.2 10 1
`

func TestCoverageByPackage(t *testing.T) {
	pkgs, err := coverageByPackage(sampleProfile)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]PkgCoverage{}
	for _, pc := range pkgs {
		got[pc.Package] = pc
	}
	sim := got["fpgavirtio/internal/sim"]
	if sim.Statements != 10 || sim.Covered != 5 || sim.Percent != 50 {
		t.Errorf("sim coverage = %+v, want 5/10 = 50%%", sim)
	}
	drv := got["fpgavirtio/internal/drivers/xdmadrv"]
	if drv.Statements != 10 || drv.Covered != 4 || drv.Percent != 40 {
		t.Errorf("xdmadrv coverage = %+v, want 4/10 = 40%%", drv)
	}
	if len(pkgs) != 3 {
		t.Errorf("parsed %d packages, want 3", len(pkgs))
	}
}

func TestCoverageByPackageMergesDuplicateBlocks(t *testing.T) {
	// The same source block appearing covered in one test binary and
	// uncovered in another counts once, as covered.
	profile := `mode: set
fpgavirtio/internal/sim/time.go:10.2,12.10 3 0
fpgavirtio/internal/sim/time.go:10.2,12.10 3 1
`
	pkgs, err := coverageByPackage(profile)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Statements != 3 || pkgs[0].Covered != 3 {
		t.Fatalf("merged coverage = %+v, want 3/3", pkgs)
	}
}

func TestCoverageByPackageRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                              // no header
		"not a profile\n",               // no mode header
		"mode: set\nfoo bar\n",          // malformed block
		"mode: set\nf.go:1.1,2.2 x 1\n", // non-numeric
	} {
		if _, err := coverageByPackage(bad); err == nil {
			t.Errorf("malformed profile %q accepted", bad)
		}
	}
}

func TestGatePrefixes(t *testing.T) {
	prefixes := splitPrefixes(defaultGate)
	cases := []struct {
		pkg  string
		want bool
	}{
		{"fpgavirtio/internal/drivers/xdmadrv", true},
		{"fpgavirtio/internal/drivers/virtionet", true},
		{"fpgavirtio/internal/sim", true},
		{"fpgavirtio/internal/simulator", false}, // prefix must match a path segment
		{"fpgavirtio/internal/perf", false},
		{"fpgavirtio/cmd/fvbench", false},
	}
	for _, tc := range cases {
		if got := gated(tc.pkg, prefixes); got != tc.want {
			t.Errorf("gated(%q) = %v, want %v", tc.pkg, got, tc.want)
		}
	}
}

func TestGateAgainst(t *testing.T) {
	pkgs := []PkgCoverage{
		{Package: "fpgavirtio/internal/sim", Percent: 80},
		{Package: "fpgavirtio/internal/drivers/xdmadrv", Percent: 75},
	}
	ok := &Baseline{Schema: CoverSchema, Floors: map[string]float64{
		"fpgavirtio/internal/sim":             78,
		"fpgavirtio/internal/drivers/xdmadrv": 74.5,
	}}
	if err := gateAgainst(ok, pkgs); err != nil {
		t.Errorf("coverage above floors rejected: %v", err)
	}
	drop := &Baseline{Schema: CoverSchema, Floors: map[string]float64{
		"fpgavirtio/internal/sim": 81,
	}}
	if err := gateAgainst(drop, pkgs); err == nil {
		t.Error("coverage below floor passed")
	} else if !strings.Contains(err.Error(), "below the 81.0% floor") {
		t.Errorf("unhelpful gate error: %v", err)
	}
	missing := &Baseline{Schema: CoverSchema, Floors: map[string]float64{
		"fpgavirtio/internal/drivers/gone": 10,
	}}
	if err := gateAgainst(missing, pkgs); err == nil {
		t.Error("baseline package missing from profile passed")
	}
}
