// Command fvtrace prints the annotated discrete-event trace of a single
// round trip on either driver path — every TLP, engine step, interrupt
// and wakeup with its simulated timestamp. It is the microscope view of
// the numbers fvbench aggregates.
//
// Usage:
//
//	fvtrace [-payload N] [-quiet=false] [-chrome out.json] [-layers a,b] [-summary] [-critical] virtio|xdma
//
// With -chrome the capture is written as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one
// process track per layer plus a track of raw simulation events.
// -layers filters the exported spans to the named layers (e.g.
// driver,irq). -summary prints capture statistics instead of the
// flat event log. -critical prints the round trip's critical path:
// the partition of the app span's window by the innermost active
// span, attributing every nanosecond to exactly one layer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/sim"
)

func main() {
	payload := flag.Int("payload", 256, "payload bytes")
	quiet := flag.Bool("quiet", true, "disable host noise for a clean trace")
	chrome := flag.String("chrome", "", "write the capture as Chrome trace-event JSON to this file")
	layers := flag.String("layers", "", "comma-separated layer filter for -chrome/-summary (e.g. driver,irq)")
	summary := flag.Bool("summary", false, "print capture statistics instead of the event log")
	critical := flag.Bool("critical", false, "print the round trip's critical path (innermost-active-span partition by layer)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fvtrace [flags] virtio|xdma\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := fpgavirtio.Config{Seed: 1, Quiet: *quiet}
	var trace *fpgavirtio.Trace
	var err error
	switch path := flag.Arg(0); path {
	case "virtio":
		trace, err = fpgavirtio.TraceNet(fpgavirtio.NetConfig{Config: cfg}, *payload)
	case "xdma":
		trace, err = fpgavirtio.TraceXDMA(fpgavirtio.XDMAConfig{Config: cfg}, *payload+54)
	default:
		fmt.Fprintf(os.Stderr, "fvtrace: unknown path %q (want virtio or xdma)\n", path)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvtrace:", err)
		os.Exit(1)
	}
	if trace.DroppedEvents > 0 {
		fmt.Fprintf(os.Stderr, "fvtrace: warning: capture truncated, %d events dropped\n", trace.DroppedEvents)
	}
	if trace.OpenSpans > 0 {
		fmt.Fprintf(os.Stderr, "fvtrace: warning: %d spans never closed\n", trace.OpenSpans)
	}

	if *layers != "" {
		var keep []string
		for _, l := range strings.Split(*layers, ",") {
			keep = append(keep, strings.TrimSpace(l))
		}
		trace = trace.FilterLayers(keep...)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fvtrace:", err)
			os.Exit(1)
		}
		if err := trace.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "fvtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fvtrace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fvtrace: wrote %s (%d spans, %d events) — load it at ui.perfetto.dev\n",
			*chrome, len(trace.Spans), len(trace.Events))
	}

	if *critical {
		printCritical(trace)
		if !*summary {
			return
		}
	}
	if *summary {
		printSummary(trace)
		return
	}
	if *chrome != "" {
		return // the JSON file is the output; skip the flat log
	}
	printEvents(trace.Events)
}

// printCritical renders the capture's critical path: the segment chain
// (which span was innermost-active when), then the per-layer fold. The
// segment durations partition the root span exactly, so the layer
// totals sum to the round trip with no residue.
func printCritical(t *fpgavirtio.Trace) {
	cp, err := t.CriticalPath()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvtrace:", err)
		os.Exit(1)
	}
	us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
	fmt.Printf("critical path of %s:%s (%.3fus)\n", cp.Root.Layer, cp.Root.Name, us(sim.Duration(cp.Root.End-cp.Root.Start)))
	for _, seg := range cp.Segments {
		fmt.Printf("  %10.3fus  +%8.3fus  %-14s %s\n",
			us(sim.Duration(seg.Start-cp.Root.Start)), us(seg.Duration()), seg.Layer, seg.Name)
	}
	fmt.Printf("per-layer critical time:\n")
	for _, st := range cp.Layers {
		fmt.Printf("  %-14s %10.3fus  %5.1f%%  (%d segments)\n", st.Layer, us(st.Total), 100*st.Share, st.Segments)
	}
	fmt.Printf("  %-14s %10.3fus\n", "total", us(cp.Total()))
}

// printSummary reports capture statistics: sizes, simulated time, and
// the per-layer span census.
func printSummary(t *fpgavirtio.Trace) {
	var t0, t1 int64
	if len(t.Events) > 0 {
		t0, t1 = t.Events[0].AtNanos, t.Events[len(t.Events)-1].AtNanos
	}
	for _, sp := range t.Spans {
		if sp.StartNanos < t0 || t1 == 0 {
			t0 = sp.StartNanos
		}
		if sp.EndNanos > t1 {
			t1 = sp.EndNanos
		}
	}
	fmt.Printf("events:      %d\n", len(t.Events))
	fmt.Printf("spans:       %d\n", len(t.Spans))
	fmt.Printf("open spans:  %d\n", t.OpenSpans)
	fmt.Printf("dropped:     %d\n", t.DroppedEvents)
	fmt.Printf("sim time:    %.3fus\n", float64(t1-t0)/1000)
	for _, layer := range t.Layers() {
		var n int
		var total int64
		for _, sp := range t.Spans {
			if sp.Layer == layer {
				n++
				total += sp.EndNanos - sp.StartNanos
			}
		}
		fmt.Printf("  %-14s %3d spans  %10.3fus\n", layer, n, float64(total)/1000)
	}
}

// printEvents renders the flat event log with relative timestamps and
// the classic interrupt/ISR markers.
func printEvents(trace []fpgavirtio.TraceEvent) {
	if len(trace) == 0 {
		fmt.Println("(no events)")
		return
	}
	t0 := trace[0].AtNanos
	var last float64
	for _, ev := range trace {
		rel := float64(ev.AtNanos-t0) / 1000
		delta := rel - last
		last = rel
		marker := ""
		switch {
		case strings.Contains(ev.Name, "MSIX"):
			marker = "  <-- interrupt"
		case strings.HasPrefix(ev.Name, "pcie:down:MWr"):
			marker = "  (posted write down)"
		case strings.Contains(ev.Name, "isr:"):
			marker = "  <-- ISR runs"
		}
		fmt.Printf("%10.3fus  +%8.3fus  %s%s\n", rel, delta, ev.Name, marker)
	}
	fmt.Printf("\ntotal: %.3fus over %d events\n",
		float64(trace[len(trace)-1].AtNanos-t0)/1000, len(trace))
}
