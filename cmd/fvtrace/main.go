// Command fvtrace prints the annotated discrete-event trace of a single
// round trip on either driver path — every TLP, engine step, interrupt
// and wakeup with its simulated timestamp. It is the microscope view of
// the numbers fvbench aggregates.
//
// Usage:
//
//	fvtrace [-payload N] [-quiet=false] virtio|xdma
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fpgavirtio "fpgavirtio"
)

func main() {
	payload := flag.Int("payload", 256, "payload bytes")
	quiet := flag.Bool("quiet", true, "disable host noise for a clean trace")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fvtrace [flags] virtio|xdma\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := fpgavirtio.Config{Seed: 1, Quiet: *quiet}
	var trace []fpgavirtio.TraceEvent
	var err error
	switch flag.Arg(0) {
	case "virtio":
		trace, err = fpgavirtio.TraceNetPing(fpgavirtio.NetConfig{Config: cfg}, *payload)
	case "xdma":
		trace, err = fpgavirtio.TraceXDMARoundTrip(fpgavirtio.XDMAConfig{Config: cfg}, *payload+54)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvtrace:", err)
		os.Exit(1)
	}

	if len(trace) == 0 {
		fmt.Println("(no events)")
		return
	}
	t0 := trace[0].AtNanos
	var last float64
	for _, ev := range trace {
		rel := float64(ev.AtNanos-t0) / 1000
		delta := rel - last
		last = rel
		marker := ""
		switch {
		case strings.Contains(ev.Name, "MSIX"):
			marker = "  <-- interrupt"
		case strings.HasPrefix(ev.Name, "pcie:down:MWr"):
			marker = "  (posted write down)"
		case strings.Contains(ev.Name, "isr:"):
			marker = "  <-- ISR runs"
		}
		fmt.Printf("%10.3fus  +%8.3fus  %s%s\n", rel, delta, ev.Name, marker)
	}
	fmt.Printf("\ntotal: %.3fus over %d events\n",
		float64(trace[len(trace)-1].AtNanos-t0)/1000, len(trace))
}
