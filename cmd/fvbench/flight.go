package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpgavirtio/internal/experiments"
	"fpgavirtio/internal/telemetry"
)

// writeFlightDumps renders every point's flight-recorder dumps as
// Chrome trace-event JSON under dir, one file per dump:
//
//	flight_<driver>_<payload>B_<reason>.json
//
// Each file holds the span ring as it stood at the trigger — the last
// couple thousand spans before a fault recovery or a new worst-case
// RTT — loadable in Perfetto or chrome://tracing.
func writeFlightDumps(sw *experiments.Sweep, dir string, fail func(error)) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	count := 0
	points := append(append([]*experiments.PointResult{}, sw.VirtIO...), sw.XDMA...)
	for _, pt := range points {
		if pt == nil {
			continue
		}
		for _, d := range pt.FlightDumps {
			name := fmt.Sprintf("flight_%s_%dB_%s.json", pt.Driver, pt.Payload, sanitizeReason(d.Reason))
			path := filepath.Join(dir, name)
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := telemetry.WriteChromeTrace(f, telemetry.DumpSpans(d), nil); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			count++
		}
	}
	fmt.Fprintf(os.Stderr, "fvbench: wrote %d flight dumps to %s\n", count, dir)
}

// sanitizeReason maps a dump reason ("fault:needsreset", "worst-rtt")
// to a filename-safe token.
func sanitizeReason(reason string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '-'
	}, reason)
}
