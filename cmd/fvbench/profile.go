package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the requested runtime/pprof collectors and returns
// an idempotent stop function that flushes them. Profiles cover the
// whole run, including the sweep workers, so -cpuprofile with
// -parallel shows the fan-out and -blockprofile shows where workers
// wait on the claim counter or result merge.
func startProfiles(cpu, heap, block string) (func(), error) {
	var stops []func() error
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if block != "" {
		runtime.SetBlockProfileRate(1)
		stops = append(stops, func() error {
			return writeProfile("block", block)
		})
	}
	if heap != "" {
		stops = append(stops, func() error {
			runtime.GC() // settle live-heap accounting before the snapshot
			return writeProfile("heap", heap)
		})
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		for _, stop := range stops {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "fvbench: profile:", err)
			}
		}
	}, nil
}

// writeProfile dumps one named pprof profile to path.
func writeProfile(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("%sprofile: %w", name, err)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		return fmt.Errorf("%sprofile: %w", name, err)
	}
	return nil
}
