package main

import (
	"fmt"
	"strconv"
	"strings"
)

const (
	// maxPayloadBytes is the absolute -sizes/-payloads bound: nothing in
	// either driver path moves more than 64 KB per packet.
	maxPayloadBytes = 64 << 10
	// maxUDPPayload is the VirtIO path's MTU-bound UDP payload; every
	// experiment drives the VirtIO side, so it is the effective cap.
	maxUDPPayload = 1458
	// maxWindow is the XDMA descriptor-list limit, the tighter of the
	// two paths' in-flight bounds.
	maxWindow = 256
	// maxQueuePairs bounds -qpairs to the controller's MSI-X budget.
	maxQueuePairs = 16
)

// parseSizes parses a -sizes/-payloads list, rejecting nonsense: empty
// fields, non-integers, zero, negatives, anything above 64 KB (and,
// tighter, above the VirtIO UDP payload cap).
func parseSizes(arg string) ([]int, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, fmt.Errorf("empty payload size list")
	}
	var out []int
	for _, field := range strings.Split(arg, ",") {
		field = strings.TrimSpace(field)
		v, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("bad payload size %q: not an integer", field)
		}
		if v < 1 || v > maxPayloadBytes {
			return nil, fmt.Errorf("payload size %d out of range: want 1..%d bytes", v, maxPayloadBytes)
		}
		if v > maxUDPPayload {
			return nil, fmt.Errorf("payload size %d exceeds the VirtIO UDP payload cap of %d bytes", v, maxUDPPayload)
		}
		out = append(out, v)
	}
	return out, nil
}

// validatePackets rejects nonsense -packets/-n counts.
func validatePackets(n int) error {
	if n < 1 {
		return fmt.Errorf("packet count %d out of range: want >= 1", n)
	}
	return nil
}

// validateStreamFlags rejects nonsense throughput-mode knobs.
func validateStreamFlags(window, qpairs int, rate float64) error {
	if window < 1 || window > maxWindow {
		return fmt.Errorf("window %d out of range: want 1..%d", window, maxWindow)
	}
	if qpairs < 1 || qpairs > maxQueuePairs {
		return fmt.Errorf("qpairs %d out of range: want 1..%d", qpairs, maxQueuePairs)
	}
	if rate < 0 {
		return fmt.Errorf("rate %g out of range: want >= 0 packets/s", rate)
	}
	return nil
}
