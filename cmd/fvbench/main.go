// Command fvbench regenerates the paper's evaluation artifacts
// (Figures 3-5, Table I) and the extension studies from DESIGN.md on
// the simulated testbed.
//
// Usage:
//
//	fvbench [flags] <experiment>          (default -mode=latency)
//	fvbench -mode=throughput [flags]
//
// Experiments (latency mode):
//
//	fig3      round-trip latency distribution (VirtIO vs XDMA)
//	fig4      VirtIO latency breakdown (software vs hardware)
//	fig5      XDMA latency breakdown
//	table1    tail latencies (95/99/99.9%)
//	all       fig3+fig4+fig5+table1 from one sweep
//	offload   E5: checksum-offload ablation
//	ablate-irq E6: interrupt/notification ablation
//	bypass    E7: host-bypass interface vs driver path
//	porta     E8: device-type and link portability
//	eventidx  E9: EVENT_IDX vs flag-based notification suppression
//	osprofiles E10: desktop/server/PREEMPT_RT host comparison
//	throughput E11: pipelined (VirtIO) vs serial (XDMA) throughput
//	ringformat E12: split vs packed virtqueue format
//	polltrade E13: poll vs interrupt datapaths, latency-vs-CPU trade
//
// Throughput mode streams a fixed packet count through a window of
// in-flight requests per driver: the VirtIO path with and without kick
// suppression (EVENT_IDX + batched TX kicks + coalesced interrupts vs
// per-packet doorbells) and the XDMA path with chained descriptor
// lists, plus the window=1 degenerate runs that reproduce the latency
// experiment through the same engine.
//
// Flags:
//
//	-n        packets per point (default 50000, the paper's count)
//	-packets  alias of -n
//	-seed     RNG seed (default 1)
//	-poll     run every measured session on the busy-poll datapath
//	          (no MSI-X / used-ring interrupts; spin-loop completion
//	          detection). Points are tagged datapath="poll" in the
//	          artifacts. Applies to both modes.
//	-gen3     use a Gen3 x4 link instead of the testbed's Gen2 x2
//	-hist     print per-point latency histograms with fig3
//	-payloads comma-separated payload sizes (default: the paper's sweep)
//	-sizes    alias of -payloads
//	-faults   fault-injection plan armed in every measured session
//	          (class[:p=..][:every=N][:after=N][:count=N], comma-
//	          separated; sweep experiments only). Faulted samples are
//	          flagged, excluded from percentiles, and summarized after
//	          the run; the artifact gains a "faults" section.
//	-mode     latency (default) or throughput
//	-window   throughput mode: in-flight request window (default 16)
//	-qpairs   throughput mode: virtio-net queue pairs (default 1)
//	-rate     throughput mode: offered rate in packets/s (0 = closed loop)
//	-json     write the run as a validated bench artifact
//	-csv      write the run as CSV
//	-metrics  dump each point's telemetry metric snapshot to stdout
//	-flightdir write each point's flight-recorder dumps (worst-RTT and
//	          per-fault-class post-mortems) as Chrome trace JSON files
//	          under this directory (sweep experiments only)
//	-serve    serve live run metrics in Prometheus text format at this
//	          address (e.g. :9090) while the sweep runs; each finished
//	          point's counters merge into the exposition
//	-parallel latency-mode sweep workers (default GOMAXPROCS); results
//	          are byte-identical at any count, 1 is the serial path
//	-cpuprofile / -memprofile / -blockprofile
//	          write runtime/pprof profiles covering the whole run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/experiments"
	"fpgavirtio/internal/faults"
)

func main() {
	n := flag.Int("n", 50000, "packets per measurement point")
	packets := flag.Int("packets", 0, "alias of -n")
	seed := flag.Uint64("seed", 1, "RNG seed")
	poll := flag.Bool("poll", false, "busy-poll datapath: no interrupts, spin-loop completion detection")
	gen3 := flag.Bool("gen3", false, "use a Gen3 x4 link")
	hist := flag.Bool("hist", false, "print latency histograms (fig3)")
	payloads := flag.String("payloads", "", "comma-separated payload sizes overriding the paper's 64..1024 sweep (e.g. 64,512,1458)")
	sizes := flag.String("sizes", "", "alias of -payloads")
	mode := flag.String("mode", "latency", "latency (paper experiments) or throughput (windowed streaming)")
	window := flag.Int("window", 16, "throughput mode: in-flight request window")
	qpairs := flag.Int("qpairs", 1, "throughput mode: virtio-net queue pairs")
	rate := flag.Float64("rate", 0, "throughput mode: offered rate in packets/s (0 = closed loop)")
	faultsPlan := flag.String("faults", "", "fault-injection plan, e.g. needsreset:every=120:count=4,irqdrop:p=0.001 (sweep experiments only)")
	jsonPath := flag.String("json", "", "write the run's bench artifact as JSON to this file")
	csvPath := flag.String("csv", "", "write the run's bench artifact as CSV to this file")
	metrics := flag.Bool("metrics", false, "dump per-point telemetry metric snapshots to stdout")
	flightDir := flag.String("flightdir", "", "write each point's flight-recorder dumps as Chrome trace JSON under this directory")
	serveAddr := flag.String("serve", "", "serve live run metrics in Prometheus text format at this address (e.g. :9090) for the duration of the sweep")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep worker goroutines; results are byte-identical at any count (1 = today's serial path)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fvbench [flags] fig3|fig4|fig5|table1|all|offload|ablate-irq|bypass|porta|eventidx|osprofiles|throughput|ringformat|polltrade\n")
		fmt.Fprintf(os.Stderr, "       fvbench -mode=throughput [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile, *blockprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvbench:", err)
		os.Exit(1)
	}

	usageErr := func(format string, args ...any) {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "fvbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["packets"] {
		*n = *packets
	}
	if err := validatePackets(*n); err != nil {
		usageErr("%v", err)
	}

	p := experiments.Params{Seed: *seed, Packets: *n, PollMode: *poll}
	if *gen3 {
		p.Link = fpgavirtio.Gen3x4
	}
	if *faultsPlan != "" {
		if _, err := faults.Parse(*faultsPlan); err != nil {
			usageErr("%v", err)
		}
		p.Faults = *faultsPlan
	}
	sizesArg := *payloads
	if set["sizes"] {
		sizesArg = *sizes
	}
	if sizesArg != "" || set["sizes"] || set["payloads"] {
		v, err := parseSizes(sizesArg)
		if err != nil {
			usageErr("%v", err)
		}
		p.Payloads = v
	}

	fail := func(err error) {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "fvbench:", err)
		os.Exit(1)
	}
	if *parallel < 1 {
		usageErr("-parallel must be >= 1 (got %d)", *parallel)
	}

	switch *mode {
	case "latency":
		if set["window"] || set["qpairs"] || set["rate"] {
			usageErr("-window/-qpairs/-rate apply to -mode=throughput")
		}
		runLatency(p, *parallel, *hist, *jsonPath, *csvPath, *metrics, *flightDir, *serveAddr, usageErr, fail)
	case "throughput":
		if flag.NArg() != 0 {
			usageErr("-mode=throughput takes no experiment argument (got %q)", flag.Arg(0))
		}
		if *hist || *metrics {
			usageErr("-hist/-metrics apply to -mode=latency")
		}
		if *flightDir != "" || *serveAddr != "" {
			usageErr("-flightdir/-serve apply to the latency-mode sweep experiments")
		}
		if p.Faults != "" {
			usageErr("-faults applies to the latency-mode sweep experiments")
		}
		if set["parallel"] {
			usageErr("-parallel applies to the latency-mode sweep")
		}
		if err := validateStreamFlags(*window, *qpairs, *rate); err != nil {
			usageErr("%v", err)
		}
		tp := experiments.ThroughputParams{Params: p, Window: *window, QueuePairs: *qpairs, RatePPS: *rate}
		fmt.Fprintf(os.Stderr, "fvbench: streaming %d packets x %d payloads, window %d...\n",
			tp.Packets, payloadCount(p), *window)
		m, err := experiments.RunThroughputMode(tp)
		if err != nil {
			fail(err)
		}
		exportThroughput(m, *jsonPath, *csvPath, fail)
		fmt.Print(m.Render())
	default:
		usageErr("unknown mode %q (latency|throughput)", *mode)
	}
	stopProfiles()
}

func payloadCount(p experiments.Params) int {
	if len(p.Payloads) > 0 {
		return len(p.Payloads)
	}
	return len(experiments.DefaultPayloads)
}

// runLatency dispatches the default-mode experiments.
func runLatency(p experiments.Params, parallel int, hist bool, jsonPath, csvPath string, metrics bool,
	flightDir, serveAddr string, usageErr func(string, ...any), fail func(error)) {
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	experiment := flag.Arg(0)
	isSweep := map[string]bool{"fig3": true, "fig4": true, "fig5": true, "table1": true, "all": true}[experiment]
	if (jsonPath != "" || csvPath != "") && !isSweep && experiment != "polltrade" {
		usageErr("-json/-csv apply to the sweep experiments (fig3|fig4|fig5|table1|all) and polltrade, not %q", experiment)
	}
	if metrics && !isSweep {
		usageErr("-metrics applies to the sweep experiments (fig3|fig4|fig5|table1|all), not %q", experiment)
	}
	if (flightDir != "" || serveAddr != "") && !isSweep {
		usageErr("-flightdir/-serve apply to the sweep experiments (fig3|fig4|fig5|table1|all), not %q", experiment)
	}
	if p.Faults != "" && !isSweep {
		usageErr("-faults applies to the sweep experiments (fig3|fig4|fig5|table1|all), not %q", experiment)
	}

	needSweep := func() *experiments.Sweep {
		fmt.Fprintf(os.Stderr, "fvbench: sweeping %d packets x %d payloads x 2 drivers (%d workers)...\n",
			p.Packets, payloadCount(p), parallel)
		var progress func(experiments.SweepProgress)
		var srv *metricsServer
		if serveAddr != "" {
			var err error
			srv, err = startMetricsServer(serveAddr, 2*payloadCount(p))
			if err != nil {
				fail(err)
			}
			defer srv.stop()
			progress = srv.observe
		}
		sw, err := experiments.RunSweepParallelWithProgress(p, parallel, progress)
		if err != nil {
			fail(err)
		}
		// Attribute tail samples before the export, so the JSON artifact
		// carries the tail_attribution block. The replay runs outside
		// every timed section and cannot perturb the measurements above.
		if err := experiments.AttributeTails(sw); err != nil {
			fail(err)
		}
		exportSweep(sw, experiment, jsonPath, csvPath, metrics, fail)
		if flightDir != "" {
			writeFlightDumps(sw, flightDir, fail)
		}
		if report := experiments.RenderFaultReport(sw); report != "" {
			fmt.Fprint(os.Stderr, report)
		}
		fmt.Fprint(os.Stderr, experiments.RenderTailReport(sw))
		return sw
	}

	switch experiment {
	case "fig3":
		sw := needSweep()
		f := experiments.RunFig3(sw)
		fmt.Print(f.Render(hist))
		if hist {
			for i := range sw.VirtIO {
				fmt.Printf("\n%d B VirtIO:\n%s", sw.VirtIO[i].Payload, sw.VirtIO[i].Total.Histogram(16, 50))
				fmt.Printf("\n%d B XDMA:\n%s", sw.XDMA[i].Payload, sw.XDMA[i].Total.Histogram(16, 50))
			}
		}
	case "fig4":
		fmt.Print(experiments.RunFig4(needSweep()).Render())
	case "fig5":
		fmt.Print(experiments.RunFig5(needSweep()).Render())
	case "table1":
		fmt.Print(experiments.RunTable1(needSweep()).Render())
	case "all":
		fmt.Print(experiments.RenderAll(needSweep()))
	case "offload":
		r, err := experiments.RunOffload(p, 1024)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "ablate-irq":
		r, err := experiments.RunIRQAblation(p, 256)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "bypass":
		r, err := experiments.RunBypass(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "porta":
		r, err := experiments.RunPortability(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "eventidx":
		r, err := experiments.RunEventIdx(p, 32)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "osprofiles":
		r, err := experiments.RunOSProfiles(p, 256)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "throughput":
		r, err := experiments.RunThroughput(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "ringformat":
		r, err := experiments.RunRingFormat(p, 256)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "polltrade":
		r, err := experiments.RunPollTrade(p)
		if err != nil {
			fail(err)
		}
		exportPollTrade(r, jsonPath, csvPath, fail)
		fmt.Print(r.Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
