// Command fvbench regenerates the paper's evaluation artifacts
// (Figures 3-5, Table I) and the extension studies from DESIGN.md on
// the simulated testbed.
//
// Usage:
//
//	fvbench [flags] <experiment>
//
// Experiments:
//
//	fig3      round-trip latency distribution (VirtIO vs XDMA)
//	fig4      VirtIO latency breakdown (software vs hardware)
//	fig5      XDMA latency breakdown
//	table1    tail latencies (95/99/99.9%)
//	all       fig3+fig4+fig5+table1 from one sweep
//	offload   E5: checksum-offload ablation
//	ablate-irq E6: interrupt/notification ablation
//	bypass    E7: host-bypass interface vs driver path
//	porta     E8: device-type and link portability
//	eventidx  E9: EVENT_IDX vs flag-based notification suppression
//	osprofiles E10: desktop/server/PREEMPT_RT host comparison
//	throughput E11: pipelined (VirtIO) vs serial (XDMA) throughput
//	ringformat E12: split vs packed virtqueue format
//
// Flags:
//
//	-n       packets per point (default 50000, the paper's count)
//	-seed    RNG seed (default 1)
//	-gen3    use a Gen3 x4 link instead of the testbed's Gen2 x2
//	-hist    print per-point latency histograms with fig3
//	-payloads comma-separated payload sizes (default: the paper's sweep)
//	-json    write the sweep as a validated bench artifact (sweep experiments)
//	-csv     write the sweep as CSV (sweep experiments)
//	-metrics dump each point's telemetry metric snapshot to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	fpgavirtio "fpgavirtio"
	"fpgavirtio/internal/experiments"
)

func main() {
	n := flag.Int("n", 50000, "packets per measurement point")
	seed := flag.Uint64("seed", 1, "RNG seed")
	gen3 := flag.Bool("gen3", false, "use a Gen3 x4 link")
	hist := flag.Bool("hist", false, "print latency histograms (fig3)")
	payloads := flag.String("payloads", "", "comma-separated payload sizes overriding the paper's 64..1024 sweep (e.g. 64,512,1458)")
	jsonPath := flag.String("json", "", "write the sweep's bench artifact as JSON to this file")
	csvPath := flag.String("csv", "", "write the sweep's bench artifact as CSV to this file")
	metrics := flag.Bool("metrics", false, "dump per-point telemetry metric snapshots to stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fvbench [flags] fig3|fig4|fig5|table1|all|offload|ablate-irq|bypass|porta|eventidx|osprofiles|throughput|ringformat\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	p := experiments.Params{Seed: *seed, Packets: *n}
	if *gen3 {
		p.Link = fpgavirtio.Gen3x4
	}
	if *payloads != "" {
		for _, f := range strings.Split(*payloads, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 || v > 1458 {
				fmt.Fprintf(os.Stderr, "fvbench: bad payload %q (1..1458)\n", f)
				os.Exit(2)
			}
			p.Payloads = append(p.Payloads, v)
		}
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fvbench:", err)
		os.Exit(1)
	}

	experiment := flag.Arg(0)
	isSweep := map[string]bool{"fig3": true, "fig4": true, "fig5": true, "table1": true, "all": true}[experiment]
	if (*jsonPath != "" || *csvPath != "" || *metrics) && !isSweep {
		fmt.Fprintf(os.Stderr, "fvbench: -json/-csv/-metrics apply to the sweep experiments (fig3|fig4|fig5|table1|all), not %q\n", experiment)
		os.Exit(2)
	}

	needSweep := func() *experiments.Sweep {
		npayloads := len(p.Payloads)
		if npayloads == 0 {
			npayloads = len(experiments.DefaultPayloads)
		}
		fmt.Fprintf(os.Stderr, "fvbench: sweeping %d packets x %d payloads x 2 drivers...\n",
			p.Packets, npayloads)
		sw, err := experiments.RunSweep(p)
		if err != nil {
			fail(err)
		}
		exportSweep(sw, experiment, *jsonPath, *csvPath, *metrics, fail)
		return sw
	}

	switch experiment {
	case "fig3":
		sw := needSweep()
		f := experiments.RunFig3(sw)
		fmt.Print(f.Render(*hist))
		if *hist {
			for i := range sw.VirtIO {
				fmt.Printf("\n%d B VirtIO:\n%s", sw.VirtIO[i].Payload, sw.VirtIO[i].Total.Histogram(16, 50))
				fmt.Printf("\n%d B XDMA:\n%s", sw.XDMA[i].Payload, sw.XDMA[i].Total.Histogram(16, 50))
			}
		}
	case "fig4":
		fmt.Print(experiments.RunFig4(needSweep()).Render())
	case "fig5":
		fmt.Print(experiments.RunFig5(needSweep()).Render())
	case "table1":
		fmt.Print(experiments.RunTable1(needSweep()).Render())
	case "all":
		fmt.Print(experiments.RenderAll(needSweep()))
	case "offload":
		r, err := experiments.RunOffload(p, 1024)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "ablate-irq":
		r, err := experiments.RunIRQAblation(p, 256)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "bypass":
		r, err := experiments.RunBypass(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "porta":
		r, err := experiments.RunPortability(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "eventidx":
		r, err := experiments.RunEventIdx(p, 32)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "osprofiles":
		r, err := experiments.RunOSProfiles(p, 256)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "throughput":
		r, err := experiments.RunThroughput(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	case "ringformat":
		r, err := experiments.RunRingFormat(p, 256)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
	default:
		flag.Usage()
		os.Exit(2)
	}
}
