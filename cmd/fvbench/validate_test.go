package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSizesAccepts(t *testing.T) {
	cases := []struct {
		arg  string
		want []int
	}{
		{"64", []int{64}},
		{"64,256,1024", []int{64, 256, 1024}},
		{" 64 , 1458 ", []int{64, 1458}}, // whitespace and the MTU cap itself
		{"1", []int{1}},
	}
	for _, tc := range cases {
		got, err := parseSizes(tc.arg)
		if err != nil {
			t.Errorf("parseSizes(%q) = error %v", tc.arg, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseSizes(%q) = %v, want %v", tc.arg, got, tc.want)
		}
	}
}

func TestParseSizesRejects(t *testing.T) {
	cases := []struct {
		name, arg, want string
	}{
		{"empty", "", "empty"},
		{"blank", "   ", "empty"},
		{"zero", "0", "out of range"},
		{"negative", "-64", "out of range"},
		{"over 64KB", "65537", "out of range"},
		{"over MTU", "1459", "UDP payload cap"},
		{"non-integer", "64,abc", "not an integer"},
		{"float", "64.5", "not an integer"},
		{"empty field", "64,,256", "not an integer"},
		{"good then bad", "64,0", "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseSizes(tc.arg)
			if err == nil {
				t.Fatalf("parseSizes(%q) accepted nonsense", tc.arg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("parseSizes(%q) error %q, want mention of %q", tc.arg, err, tc.want)
			}
		})
	}
}

func TestValidatePackets(t *testing.T) {
	for _, n := range []int{1, 50, 50000} {
		if err := validatePackets(n); err != nil {
			t.Errorf("validatePackets(%d) = %v", n, err)
		}
	}
	for _, n := range []int{0, -1, -50000} {
		if err := validatePackets(n); err == nil {
			t.Errorf("validatePackets(%d) accepted nonsense", n)
		}
	}
}

func TestValidateStreamFlags(t *testing.T) {
	if err := validateStreamFlags(16, 2, 0); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if err := validateStreamFlags(1, 1, 5000); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if err := validateStreamFlags(maxWindow, maxQueuePairs, 0); err != nil {
		t.Errorf("boundary flags rejected: %v", err)
	}
	cases := []struct {
		name           string
		window, qpairs int
		rate           float64
		want           string
	}{
		{"zero window", 0, 1, 0, "window"},
		{"negative window", -4, 1, 0, "window"},
		{"window over list limit", maxWindow + 1, 1, 0, "window"},
		{"zero qpairs", 16, 0, 0, "qpairs"},
		{"qpairs over MSI-X budget", 16, maxQueuePairs + 1, 0, "qpairs"},
		{"negative rate", 16, 1, -1, "rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateStreamFlags(tc.window, tc.qpairs, tc.rate)
			if err == nil {
				t.Fatal("nonsense flags accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q, want mention of %q", err, tc.want)
			}
		})
	}
}
