package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"

	"fpgavirtio/internal/experiments"
	"fpgavirtio/internal/telemetry"
)

// The live exposition endpoint behind -serve: a plain net/http server
// (no dependencies) that renders the run's telemetry in Prometheus text
// format. Worker goroutines deliver each finished sweep cell through
// observe; /metrics merges every delivered snapshot on demand, so a
// scraper watching a long sweep sees counters grow point by point.

// metricsServer accumulates per-point metric snapshots and serves the
// merged view over HTTP.
type metricsServer struct {
	mu     sync.Mutex
	points [][]telemetry.MetricSnapshot
	done   int
	total  int

	ln  net.Listener
	srv *http.Server
}

// startMetricsServer binds addr and begins serving /metrics (and /, as
// an alias) immediately; before the first cell finishes the exposition
// holds only the sweep progress gauges.
func startMetricsServer(addr string, totalCells int) (*metricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-serve %s: %w", addr, err)
	}
	s := &metricsServer{ln: ln, total: totalCells}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	mux.HandleFunc("/metrics", s.handle)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on stop
	fmt.Fprintf(os.Stderr, "fvbench: serving metrics at http://%s/metrics\n", ln.Addr())
	return s, nil
}

// observe is the sweep progress callback; it runs on worker goroutines,
// possibly concurrently.
func (s *metricsServer) observe(p experiments.SweepProgress) {
	s.mu.Lock()
	s.points = append(s.points, p.Point.Metrics)
	s.done, s.total = p.Done, p.Total
	s.mu.Unlock()
}

func (s *metricsServer) handle(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snaps := mergeSnapshots(s.points)
	snaps = append(snaps,
		telemetry.MetricSnapshot{Name: "sweep.cells.done", Type: "gauge", Value: float64(s.done)},
		telemetry.MetricSnapshot{Name: "sweep.cells.total", Type: "gauge", Value: float64(s.total)})
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, snaps) //nolint:errcheck // client went away
}

// stop closes the listener; in-flight scrapes are cut off, which is
// fine for a process that is exiting anyway.
func (s *metricsServer) stop() {
	s.srv.Close()
}

// mergeSnapshots folds per-point snapshots into one exposition: values
// and bucket counts sum across points (the merge is therefore
// independent of cell completion order), histogram buckets align by
// upper bound.
func mergeSnapshots(points [][]telemetry.MetricSnapshot) []telemetry.MetricSnapshot {
	merged := map[string]*telemetry.MetricSnapshot{}
	for _, snaps := range points {
		for _, s := range snaps {
			m, ok := merged[s.Name]
			if !ok {
				c := s
				c.Buckets = append([]telemetry.BucketSnapshot(nil), s.Buckets...)
				merged[s.Name] = &c
				continue
			}
			m.Value += s.Value
			m.Count += s.Count
			m.Sum += s.Sum
			if len(s.Buckets) > 0 {
				m.Buckets = mergeBuckets(m.Buckets, s.Buckets)
			}
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names) // never map order: the exposition must be byte-stable
	out := make([]telemetry.MetricSnapshot, 0, len(names)+2)
	for _, name := range names {
		out = append(out, *merged[name])
	}
	return out
}

// mergeBuckets sums two bucket lists by upper bound. Same-name
// instruments share bucket layouts, so this is normally a zip; sparse
// HDR snapshots may contribute bounds the other side lacks.
func mergeBuckets(a, b []telemetry.BucketSnapshot) []telemetry.BucketSnapshot {
	counts := map[float64]int64{}
	for _, x := range a {
		counts[x.UpperBound] += x.Count
	}
	for _, x := range b {
		counts[x.UpperBound] += x.Count
	}
	bounds := make([]float64, 0, len(counts))
	for ub := range counts {
		bounds = append(bounds, ub)
	}
	sort.Float64s(bounds) // +Inf sorts last, as the exposition requires
	out := make([]telemetry.BucketSnapshot, 0, len(bounds))
	for _, ub := range bounds {
		out = append(out, telemetry.BucketSnapshot{UpperBound: ub, Count: counts[ub]})
	}
	return out
}
