package main

import (
	"fmt"
	"os"

	"fpgavirtio/internal/experiments"
	"fpgavirtio/internal/telemetry"
)

// exportSweep writes the sweep's machine-readable artifacts as requested
// by the -json/-csv/-metrics flags. The JSON artifact is re-read and
// validated against the exporter schema after writing, so a passing run
// guarantees a loadable file.
func exportSweep(sw *experiments.Sweep, experiment, jsonPath, csvPath string, metrics bool, fail func(error)) {
	art := experiments.BuildArtifact(experiment, sw)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteBenchJSON(f, art); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.ValidateBenchJSON(data); err != nil {
			fail(fmt.Errorf("artifact %s failed schema validation: %w", jsonPath, err))
		}
		fmt.Fprintf(os.Stderr, "fvbench: wrote %s (%d points, schema %s)\n", jsonPath, len(art.Points), art.Schema)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteBenchCSV(f, art); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvbench: wrote %s (%d points)\n", csvPath, len(art.Points))
	}
	if metrics {
		writeMetrics(sw, fail)
	}
}

// exportThroughput writes the throughput run's artifacts. Like
// exportSweep, the JSON file is re-read and schema-validated after
// writing.
func exportThroughput(m *experiments.ThroughputMode, jsonPath, csvPath string, fail func(error)) {
	art := experiments.BuildThroughputArtifact(m)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteBenchJSON(f, art); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.ValidateBenchJSON(data); err != nil {
			fail(fmt.Errorf("artifact %s failed schema validation: %w", jsonPath, err))
		}
		fmt.Fprintf(os.Stderr, "fvbench: wrote %s (%d throughput points, %d latency points, schema %s)\n",
			jsonPath, len(art.Throughput), len(art.Points), art.Schema)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteThroughputCSV(f, art); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvbench: wrote %s (%d throughput points)\n", csvPath, len(art.Throughput))
	}
}

// exportPollTrade writes the E13 four-way study's artifacts. The JSON
// file is re-read and schema-validated after writing, like exportSweep.
func exportPollTrade(r *experiments.PollTradeStudy, jsonPath, csvPath string, fail func(error)) {
	art := experiments.BuildPollTradeArtifact(r)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteBenchJSON(f, art); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.ValidateBenchJSON(data); err != nil {
			fail(fmt.Errorf("artifact %s failed schema validation: %w", jsonPath, err))
		}
		fmt.Fprintf(os.Stderr, "fvbench: wrote %s (%d points, schema %s)\n", jsonPath, len(art.Points), art.Schema)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fail(err)
		}
		if err := telemetry.WriteBenchCSV(f, art); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvbench: wrote %s (%d points)\n", csvPath, len(art.Points))
	}
}

func writeMetrics(sw *experiments.Sweep, fail func(error)) {
	{
		dump := func(pt *experiments.PointResult) {
			fmt.Printf("== metrics: %s/%dB ==\n", pt.Driver, pt.Payload)
			if err := telemetry.WriteMetricsCSV(os.Stdout, pt.Metrics); err != nil {
				fail(err)
			}
		}
		for i := range sw.VirtIO {
			dump(sw.VirtIO[i])
			if i < len(sw.XDMA) {
				dump(sw.XDMA[i])
			}
		}
	}
}
