// Command fvlint runs the project's static-analysis suite — ringorder,
// kickflush, metricname, lockorder, hotalloc, detsafe — over every
// package of the module. The per-package analyzers check each package
// in isolation; the interprocedural ones (kickflush, lockorder,
// detsafe) run once over the whole-module call graph, so a blocking
// helper, an out-of-order lock, or a wall-clock read hidden several
// calls deep is still found.
//
// Usage:
//
//	fvlint [-suppressed] [-why] [-graph] [-suppressions] [-root dir]
//
// Diagnostics print as file:line:col: [analyzer] message. The exit
// status is 1 when any unsuppressed diagnostic remains, so `make lint`
// fails until the finding is fixed or carries an auditable
// `//fvlint:ignore <analyzer> <reason>` directive.
//
//	-suppressed    also print suppressed findings with their reasons
//	-why           print the root→site call path witnessing each
//	               cross-function diagnostic under the finding
//	-graph         print the deterministic module call graph and exit
//	-suppressions  audit every //fvlint:ignore directive in the tree:
//	               list file:line, rule and reason; exit 1 if any
//	               directive lacks a reason
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fpgavirtio/internal/analysis"
	"fpgavirtio/internal/analysis/detsafe"
	"fpgavirtio/internal/analysis/hotalloc"
	"fpgavirtio/internal/analysis/kickflush"
	"fpgavirtio/internal/analysis/lockorder"
	"fpgavirtio/internal/analysis/metricname"
	"fpgavirtio/internal/analysis/ringorder"
)

var analyzers = []*analysis.Analyzer{
	ringorder.Analyzer,
	kickflush.Analyzer,
	metricname.Analyzer,
	lockorder.Analyzer,
	hotalloc.Analyzer,
	detsafe.Analyzer,
}

// options selects the fvlint mode and output shape.
type options struct {
	suppressed bool // print suppressed findings with reasons
	why        bool // print call-path witnesses under findings
	graph      bool // dump the module call graph instead of linting
	audit      bool // audit //fvlint:ignore directives instead of linting
}

func main() {
	var opts options
	flag.BoolVar(&opts.suppressed, "suppressed", false, "also print suppressed diagnostics with their reasons")
	flag.BoolVar(&opts.why, "why", false, "print the call path witnessing each cross-function diagnostic")
	flag.BoolVar(&opts.graph, "graph", false, "print the module call graph and exit")
	flag.BoolVar(&opts.audit, "suppressions", false, "audit every //fvlint:ignore directive and exit")
	rootFlag := flag.String("root", ".", "directory inside the module to lint")
	flag.Parse()
	os.Exit(run(*rootFlag, opts, os.Stdout, os.Stderr))
}

func run(rootDir string, opts options, out, errw io.Writer) int {
	if opts.audit {
		return runSuppressionsAudit(rootDir, out, errw)
	}
	return runLint(rootDir, opts, out, errw)
}

// runLint lints the module containing rootDir and returns the process
// exit status: 0 clean, 1 with unsuppressed findings, 2 on load errors.
func runLint(rootDir string, opts options, out, errw io.Writer) int {
	root, modPath, err := analysis.FindModule(rootDir)
	if err != nil {
		fmt.Fprintln(errw, "fvlint:", err)
		return 2
	}
	loader := analysis.NewLoader(modPath, root)

	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(errw, "fvlint:", err)
		return 2
	}

	failed := false
	var pkgs []*analysis.Package
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(errw, "fvlint: %v\n", err)
			failed = true
			continue
		}
		pkgs = append(pkgs, pkg)
		diags = append(diags, analysis.RunAnalyzers(pkg, analyzers)...)
	}

	// The interprocedural analyzers run once, over the call graph of
	// everything that loaded.
	graph := analysis.BuildCallGraph(pkgs)
	if opts.graph {
		io.WriteString(out, graph.Dump())
		if failed {
			return 2
		}
		return 0
	}
	diags = append(diags, analysis.RunModuleAnalyzers(graph, analyzers)...)
	analysis.SortDiagnostics(diags)

	bad := 0
	for _, d := range diags {
		if d.Suppressed {
			if opts.suppressed {
				fmt.Fprintf(out, "%s [suppressed: %s]\n", d, d.Reason)
			}
			continue
		}
		bad++
		fmt.Fprintln(out, d)
		if opts.why && len(d.Witness) > 0 {
			for _, w := range d.Witness {
				fmt.Fprintf(out, "    %s\n", w)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(errw, "fvlint: %d finding(s)\n", bad)
		return 1
	}
	if failed {
		return 2
	}
	return 0
}

// runSuppressionsAudit parses every non-testdata Go file under the
// module (test files included) and lists each //fvlint:ignore
// directive with its rule and reason, using the same parser the
// suppression matcher itself uses — prose or string literals that
// merely mention the marker do not count. A directive without a reason
// fails the audit: the framework already refuses to suppress on it, so
// it is dead weight that looks like an exemption — it must either gain
// a justification or go.
func runSuppressionsAudit(rootDir string, out, errw io.Writer) int {
	root, _, err := analysis.FindModule(rootDir)
	if err != nil {
		// No module marker: audit the tree as given (keeps the audit
		// usable on bare directories and in tests).
		root = rootDir
	}
	fset := token.NewFileSet()
	var entries []analysis.DirectiveInfo
	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, di := range analysis.ListDirectives(fset, []*ast.File{f}) {
			rel, _ := filepath.Rel(root, di.File)
			di.File = filepath.ToSlash(rel)
			entries = append(entries, di)
		}
		return nil
	})
	if walkErr != nil {
		fmt.Fprintln(errw, "fvlint:", walkErr)
		return 2
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		return entries[i].Line < entries[j].Line
	})
	missing := 0
	for _, e := range entries {
		if e.Reason == "" {
			missing++
			fmt.Fprintf(out, "%s:%d: [%s] MISSING REASON\n", e.File, e.Line, e.Rule)
			continue
		}
		fmt.Fprintf(out, "%s:%d: [%s] %s\n", e.File, e.Line, e.Rule, e.Reason)
	}
	fmt.Fprintf(out, "%d suppression(s), %d without reason\n", len(entries), missing)
	if missing > 0 {
		fmt.Fprintf(errw, "fvlint: %d suppression(s) lack a reason; a reason-less //fvlint:ignore suppresses nothing and must be justified or removed\n", missing)
		return 1
	}
	return 0
}

// packageDirs lists every directory under root holding non-test Go
// files, skipping testdata, hidden and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
