// Command fvlint runs the project's static-analysis suite — ringorder,
// kickflush, metricname, lockorder, hotalloc — over every package of
// the module.
//
// Usage:
//
//	fvlint [-suppressed] [-root dir]
//
// Diagnostics print as file:line:col: [analyzer] message. The exit
// status is 1 when any unsuppressed diagnostic remains, so `make lint`
// fails until the finding is fixed or carries an auditable
// `//fvlint:ignore <analyzer> <reason>` directive. -suppressed also
// prints suppressed findings with their justification.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fpgavirtio/internal/analysis"
	"fpgavirtio/internal/analysis/hotalloc"
	"fpgavirtio/internal/analysis/kickflush"
	"fpgavirtio/internal/analysis/lockorder"
	"fpgavirtio/internal/analysis/metricname"
	"fpgavirtio/internal/analysis/ringorder"
)

var analyzers = []*analysis.Analyzer{
	ringorder.Analyzer,
	kickflush.Analyzer,
	metricname.Analyzer,
	lockorder.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	showSuppressed := flag.Bool("suppressed", false, "also print suppressed diagnostics with their reasons")
	rootFlag := flag.String("root", ".", "directory inside the module to lint")
	flag.Parse()
	os.Exit(runLint(*rootFlag, *showSuppressed, os.Stdout, os.Stderr))
}

// runLint lints the module containing rootDir and returns the process
// exit status: 0 clean, 1 with unsuppressed findings, 2 on load errors.
func runLint(rootDir string, showSuppressed bool, out, errw io.Writer) int {
	root, modPath, err := analysis.FindModule(rootDir)
	if err != nil {
		fmt.Fprintln(errw, "fvlint:", err)
		return 2
	}
	loader := analysis.NewLoader(modPath, root)

	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(errw, "fvlint:", err)
		return 2
	}

	failed := false
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintf(errw, "fvlint: %v\n", err)
			failed = true
			continue
		}
		diags = append(diags, analysis.RunAnalyzers(pkg, analyzers)...)
	}

	bad := 0
	for _, d := range diags {
		if d.Suppressed {
			if showSuppressed {
				fmt.Fprintf(out, "%s [suppressed: %s]\n", d, d.Reason)
			}
			continue
		}
		bad++
		fmt.Fprintln(out, d)
	}
	if bad > 0 {
		fmt.Fprintf(errw, "fvlint: %d finding(s)\n", bad)
		return 1
	}
	if failed {
		return 2
	}
	return 0
}

// packageDirs lists every directory under root holding non-test Go
// files, skipping testdata, hidden and underscore-prefixed trees.
func packageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
