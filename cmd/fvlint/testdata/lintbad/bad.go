// Package lintbad is a known-bad module for the fvlint smoke test: it
// carries exactly one kickflush violation (the PR 2 deferred-kick
// shape) so the test can assert that a real run exits 1 and names the
// finding. It lives under testdata so the go tool never builds it.
package lintbad

// Proc stands in for a simulator process handle.
type Proc struct{}

// Driver mimes the transmit surface of the virtio-net driver.
type Driver struct{}

// SendTo queues a frame under a batched-doorbell policy.
func (Driver) SendTo(p *Proc, b []byte) {}

// FlushTx forces the pending doorbell.
func (Driver) FlushTx(p *Proc) {}

// Socket mimes the blocking datagram receive.
type Socket struct{}

// RecvFrom parks until a datagram arrives.
func (Socket) RecvFrom(p *Proc) []byte { return nil }

// BadPing enqueues and then blocks without flushing — the finding the
// smoke test expects fvlint to report.
func BadPing(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	return s.RecvFrom(p)
}

// GoodPing is the fixed shape; it must not be flagged.
func GoodPing(p *Proc, d Driver, s Socket, b []byte) []byte {
	d.SendTo(p, b)
	d.FlushTx(p)
	return s.RecvFrom(p)
}
