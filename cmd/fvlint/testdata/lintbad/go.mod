module lintbad

go 1.21
