package lintbad

import "time"

// RunStamp is a detsafe root whose helper reads the wall clock: the
// seeded cross-function finding the -why smoke test prints a witness
// for.
//
//fvlint:detsafe-root
func RunStamp() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().UnixNano()
}
