package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root from this test file's position, so
// the smoke test works regardless of the test working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))) // cmd/fvlint/main_test.go -> repo root
}

// TestLintRepoIsClean is the lint gate in test form: the repository
// itself must produce zero unsuppressed diagnostics — including from
// the interprocedural analyzers over the whole-module call graph.
func TestLintRepoIsClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runLint(repoRoot(t), options{}, &out, &errw); code != 0 {
		t.Fatalf("fvlint on the repo exited %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestLintFlagsKnownBadModule smoke-tests the whole pipeline — module
// discovery, source loading, analyzer run, diagnostic printing, exit
// status — against the known-bad fixture module under testdata.
func TestLintFlagsKnownBadModule(t *testing.T) {
	bad := filepath.Join(repoRoot(t), "cmd", "fvlint", "testdata", "lintbad")
	var out, errw bytes.Buffer
	if code := runLint(bad, options{}, &out, &errw); code != 1 {
		t.Fatalf("fvlint on lintbad exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "[kickflush]") {
		t.Errorf("diagnostics missing [kickflush] tag:\n%s", got)
	}
	if !strings.Contains(got, "RecvFrom") || !strings.Contains(got, "SendTo") {
		t.Errorf("diagnostic does not name the enqueue/block pair:\n%s", got)
	}
	if strings.Contains(got, "GoodPing") {
		t.Errorf("fixed shape GoodPing was flagged:\n%s", got)
	}
	if n := strings.Count(got, "/bad.go:"); n != 1 {
		t.Errorf("want exactly 1 finding in bad.go, got %d:\n%s", n, got)
	}
	if !strings.Contains(got, "[detsafe]") || !strings.Contains(got, "time.Now") {
		t.Errorf("diagnostics missing the seeded detsafe wall-clock finding:\n%s", got)
	}
}

// TestWhyPrintsWitness pins the -why acceptance shape: the seeded
// detsafe finding in lintbad carries the root→helper call path.
func TestWhyPrintsWitness(t *testing.T) {
	bad := filepath.Join(repoRoot(t), "cmd", "fvlint", "testdata", "lintbad")
	var out, errw bytes.Buffer
	if code := runLint(bad, options{why: true}, &out, &errw); code != 1 {
		t.Fatalf("fvlint -why on lintbad exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	got := out.String()
	for _, wantLine := range []string{
		"lintbad.RunStamp",
		"→ lintbad.stamp (called at",
		"→ calls time.Now",
	} {
		if !strings.Contains(got, wantLine) {
			t.Errorf("-why output missing witness line %q:\n%s", wantLine, got)
		}
	}
}

// TestGraphMode checks -graph prints the deterministic call-graph dump.
func TestGraphMode(t *testing.T) {
	bad := filepath.Join(repoRoot(t), "cmd", "fvlint", "testdata", "lintbad")
	var out, errw bytes.Buffer
	if code := runLint(bad, options{graph: true}, &out, &errw); code != 0 {
		t.Fatalf("fvlint -graph exited %d, want 0\nstderr:\n%s", code, errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "lintbad.RunStamp\n") {
		t.Errorf("-graph output missing node lintbad.RunStamp:\n%s", got)
	}
	if !strings.Contains(got, "→ lintbad.stamp") || !strings.Contains(got, "→ time.Now") {
		t.Errorf("-graph output missing edges of RunStamp/stamp:\n%s", got)
	}
	var again bytes.Buffer
	if code := runLint(bad, options{graph: true}, &again, &errw); code != 0 || again.String() != got {
		t.Errorf("-graph output not identical across runs")
	}
}

// TestSuppressionsAuditRepo: every suppression in the repo proper must
// carry a reason, so the audit gate exits 0.
func TestSuppressionsAuditRepo(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runSuppressionsAudit(repoRoot(t), &out, &errw); code != 0 {
		t.Fatalf("suppressions audit on the repo exited %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "suppression(s), 0 without reason") {
		t.Errorf("audit summary line missing:\n%s", out.String())
	}
}

// TestSuppressionsAuditFlagsMissingReason: a reason-less directive
// fails the audit with exit 1 and is listed as MISSING REASON.
func TestSuppressionsAuditFlagsMissingReason(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc f() {\n\t//fvlint:ignore kickflush\n\t_ = 0\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := runSuppressionsAudit(dir, &out, &errw); code != 1 {
		t.Fatalf("audit exited %d, want 1\nstdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING REASON") {
		t.Errorf("audit did not flag the reason-less directive:\n%s", out.String())
	}
}
