package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root from this test file's position, so
// the smoke test works regardless of the test working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))) // cmd/fvlint/main_test.go -> repo root
}

// TestLintRepoIsClean is the lint gate in test form: the repository
// itself must produce zero unsuppressed diagnostics.
func TestLintRepoIsClean(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runLint(repoRoot(t), false, &out, &errw); code != 0 {
		t.Fatalf("fvlint on the repo exited %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestLintFlagsKnownBadModule smoke-tests the whole pipeline — module
// discovery, source loading, analyzer run, diagnostic printing, exit
// status — against the known-bad fixture module under testdata.
func TestLintFlagsKnownBadModule(t *testing.T) {
	bad := filepath.Join(repoRoot(t), "cmd", "fvlint", "testdata", "lintbad")
	var out, errw bytes.Buffer
	if code := runLint(bad, false, &out, &errw); code != 1 {
		t.Fatalf("fvlint on lintbad exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	got := out.String()
	if !strings.Contains(got, "[kickflush]") {
		t.Errorf("diagnostics missing [kickflush] tag:\n%s", got)
	}
	if !strings.Contains(got, "RecvFrom") || !strings.Contains(got, "SendTo") {
		t.Errorf("diagnostic does not name the enqueue/block pair:\n%s", got)
	}
	if strings.Contains(got, "GoodPing") {
		t.Errorf("fixed shape GoodPing was flagged:\n%s", got)
	}
	if n := strings.Count(got, "bad.go"); n != 1 {
		t.Errorf("want exactly 1 finding in bad.go, got %d:\n%s", n, got)
	}
}
