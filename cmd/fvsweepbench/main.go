// Command fvsweepbench times the Fig-3 sweep grid end to end — once
// serially, once through the parallel engine — and emits a validated
// fvsweepbench/v1 artifact (BENCH_sweep.json). With -check it becomes
// the regression gate behind `make benchcmp`: it exits non-zero when
// the serial per-packet cost regresses past -tolerance against the
// committed baseline, or when the parallel speedup falls below
// -minspeedup on a host with enough cores to show one. A passing check
// also prints the signed per-packet delta, so improvement magnitudes
// (and the re-baselines they justify, `make benchbase`) are auditable
// from the log.
//
// Flags:
//
//	-n          packets per grid cell (default 2000)
//	-packets    alias of -n
//	-seed       RNG seed (default 1)
//	-payloads   comma-separated payload sizes (default: the paper's sweep)
//	-parallel   worker count of the parallel arm (default GOMAXPROCS)
//	-json       write the artifact to this file
//	-check      compare against this baseline artifact; exit 1 on regression
//	-tolerance  allowed per-packet cost growth vs baseline (default 0.15)
//	-minspeedup required parallel speedup when NumCPU >= 4 (default 3; 0 disables)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"fpgavirtio/internal/experiments"
)

func main() {
	n := flag.Int("n", 2000, "packets per grid cell")
	packets := flag.Int("packets", 0, "alias of -n")
	seed := flag.Uint64("seed", 1, "RNG seed")
	payloads := flag.String("payloads", "", "comma-separated payload sizes overriding the paper's 64..1024 sweep")
	parallel := flag.Int("parallel", defaultWorkers(), "worker count of the parallel arm")
	jsonPath := flag.String("json", "", "write the fvsweepbench/v1 artifact to this file")
	check := flag.String("check", "", "baseline artifact to gate against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed per-packet cost growth vs baseline")
	minSpeedup := flag.Float64("minspeedup", 3, "required parallel speedup when NumCPU >= 4 (0 disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fvsweepbench:", err)
		os.Exit(1)
	}
	if flag.NArg() != 0 {
		fail(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["packets"] {
		*n = *packets
	}
	if *n < 1 {
		fail(fmt.Errorf("-n must be >= 1 (got %d)", *n))
	}
	if *parallel < 2 {
		fail(fmt.Errorf("-parallel must be >= 2 so the two arms differ (got %d)", *parallel))
	}
	if *tolerance < 0 {
		fail(fmt.Errorf("-tolerance must be >= 0 (got %g)", *tolerance))
	}

	p := experiments.Params{Seed: *seed, Packets: *n}
	if *payloads != "" {
		sizes, err := parseSizes(*payloads)
		if err != nil {
			fail(err)
		}
		p.Payloads = sizes
	}

	fmt.Fprintf(os.Stderr, "fvsweepbench: timing %d packets/cell, serial then %d workers...\n", *n, *parallel)
	b, err := experiments.MeasureSweepBench(p, *parallel)
	if err != nil {
		fail(err)
	}
	fmt.Printf("cells %d  serial %.2fs  parallel(%d) %.2fs  speedup %.2fx  %.0f ns/packet serial  [%d CPUs]\n",
		b.Cells, float64(b.SerialNs)/1e9, b.Workers, float64(b.ParallelNs)/1e9,
		b.Speedup, b.SerialNsPerPacket, b.NumCPU)

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteSweepBench(f, b); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "fvsweepbench: wrote %s\n", *jsonPath)
	}

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fail(err)
		}
		base, err := experiments.ReadSweepBench(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("baseline %s: %w", *check, err))
		}
		if err := experiments.CompareSweepBench(base, b, *tolerance, *minSpeedup); err != nil {
			fail(fmt.Errorf("regression vs %s: %w", *check, err))
		}
		if skip := experiments.SpeedupGateSkip(b, *minSpeedup); skip != "" {
			fmt.Fprintf(os.Stderr, "fvsweepbench: %s\n", skip)
		}
		fmt.Fprintf(os.Stderr, "fvsweepbench: %s\n", experiments.ImprovementDelta(base, b))
		fmt.Fprintf(os.Stderr, "fvsweepbench: within budget vs %s (baseline %.0f ns/packet)\n",
			*check, base.SerialNsPerPacket)
	}
}

// defaultWorkers picks the parallel arm's worker count: GOMAXPROCS,
// floored at 8 so the engine is exercised (and speedup recorded
// honestly) even on small hosts where GOMAXPROCS would collapse the
// two arms into the same serial path.
func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 8 {
		return n
	}
	return 8
}

// parseSizes parses a comma-separated list of positive payload sizes.
func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad payload size %q", part)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}
