package fpgavirtio_test

import (
	"testing"

	fpgavirtio "fpgavirtio"
)

// The steady-state latency loop must not allocate per packet: every
// per-packet object (sim events, descriptor chains, payload staging,
// harvest slices, tokens) comes from session-owned pools and scratch
// buffers. These budgets are hard 0-allocs-per-packet ceilings; a
// regression here shows up long before it is visible in wall-clock.
//
// Methodology: the per-call overhead of a series (one app process, one
// trigger, warm-up growth of pools) is constant, so the MARGINAL cost
// of 1000 extra packets isolates the per-packet allocation count:
// allocs(warm batch of 1100) - allocs(warm batch of 100), over 1000.

const (
	allocSmallBatch = 100
	allocBigBatch   = 1100
	allocSpan       = allocBigBatch - allocSmallBatch
)

// marginalAllocsPerPacket reports the amortized allocation count of one
// additional packet once the session is warm.
func marginalAllocsPerPacket(t *testing.T, run func(n int)) float64 {
	t.Helper()
	run(allocBigBatch) // warm: grow every pool, scratch buffer, and ring
	small := testing.AllocsPerRun(3, func() { run(allocSmallBatch) })
	big := testing.AllocsPerRun(3, func() { run(allocBigBatch) })
	return (big - small) / float64(allocSpan)
}

func TestVirtIOPingSteadyStateZeroAlloc(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	perPkt := marginalAllocsPerPacket(t, func(n int) {
		if err := ns.PingSeries(buf, n, nil); err != nil {
			t.Fatal(err)
		}
	})
	if perPkt > 0 {
		t.Fatalf("virtio ping allocates %.3f objects/packet in steady state, budget is 0", perPkt)
	}
}

func TestVirtIOPackedRingSteadyStateZeroAlloc(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{
		Config:        fpgavirtio.Config{Seed: 1},
		UsePackedRing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	perPkt := marginalAllocsPerPacket(t, func(n int) {
		if err := ns.PingSeries(buf, n, nil); err != nil {
			t.Fatal(err)
		}
	})
	if perPkt > 0 {
		t.Fatalf("packed-ring ping allocates %.3f objects/packet in steady state, budget is 0", perPkt)
	}
}

func TestXDMARoundTripSteadyStateZeroAlloc(t *testing.T) {
	xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256+54)
	perPkt := marginalAllocsPerPacket(t, func(n int) {
		if err := xs.RoundTripSeries(buf, n, nil); err != nil {
			t.Fatal(err)
		}
	})
	if perPkt > 0 {
		t.Fatalf("xdma round trip allocates %.3f objects/packet in steady state, budget is 0", perPkt)
	}
}

// The poll-mode datapaths hold to the same ceiling: the spin loop runs
// a pre-bound readiness closure per iteration (no per-spin or
// per-packet closures, no timer arming, no wait-queue churn), so
// busy-polling must be exactly as allocation-free as the interrupt
// path it replaces.

func TestVirtIOPollPingSteadyStateZeroAlloc(t *testing.T) {
	ns, err := fpgavirtio.OpenNet(fpgavirtio.NetConfig{Config: fpgavirtio.Config{Seed: 1, PollMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	perPkt := marginalAllocsPerPacket(t, func(n int) {
		if err := ns.PingSeries(buf, n, nil); err != nil {
			t.Fatal(err)
		}
	})
	if perPkt > 0 {
		t.Fatalf("virtio poll-mode ping allocates %.3f objects/packet in steady state, budget is 0", perPkt)
	}
}

func TestXDMAPollRoundTripSteadyStateZeroAlloc(t *testing.T) {
	xs, err := fpgavirtio.OpenXDMA(fpgavirtio.XDMAConfig{Config: fpgavirtio.Config{Seed: 1, PollMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256+54)
	perPkt := marginalAllocsPerPacket(t, func(n int) {
		if err := xs.RoundTripSeries(buf, n, nil); err != nil {
			t.Fatal(err)
		}
	})
	if perPkt > 0 {
		t.Fatalf("xdma poll-mode round trip allocates %.3f objects/packet in steady state, budget is 0", perPkt)
	}
}
