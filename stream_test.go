package fpgavirtio

import (
	"strings"
	"testing"
	"time"
)

// counterQuantum is the FPGA performance counters' 8 ns resolution —
// the tolerance the window=1 parity contract allows.
const counterQuantum = 8 * time.Nanosecond

func absDiff(a, b time.Duration) time.Duration {
	if a > b {
		return a - b
	}
	return b - a
}

// Window=1 streaming must execute the exact latency-mode sequence:
// per-packet RTT samples from Stream agree with PingDetailed within the
// counter quantization, sample by sample.
func TestStreamWindowOneMatchesLatencyVirtIO(t *testing.T) {
	const n = 100
	lat, err := OpenNet(NetConfig{Config: Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	latSamples := make([]RTTSample, 0, n)
	for i := 0; i < n; i++ {
		s, err := lat.PingDetailed(payload)
		if err != nil {
			t.Fatal(err)
		}
		latSamples = append(latSamples, s)
	}

	str, err := OpenNet(NetConfig{Config: Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := str.Stream(StreamConfig{Packets: n, PayloadSize: 64, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RTT) != n {
		t.Fatalf("stream returned %d RTT samples, want %d", len(r.RTT), n)
	}
	for i := range latSamples {
		if d := absDiff(latSamples[i].Total, r.RTT[i].Total); d > counterQuantum {
			t.Errorf("packet %d: latency %v vs stream %v (diff %v > %v)",
				i, latSamples[i].Total, r.RTT[i].Total, d, counterQuantum)
		}
		if d := absDiff(latSamples[i].Hardware, r.RTT[i].Hardware); d > counterQuantum {
			t.Errorf("packet %d: hardware share diverged by %v", i, d)
		}
	}
	if r.OccupancyMax != 1 || r.OccupancyMean != 1 {
		t.Errorf("window=1 occupancy = %d/%.2f, want 1/1", r.OccupancyMax, r.OccupancyMean)
	}
}

func TestStreamWindowOneMatchesLatencyXDMA(t *testing.T) {
	const n = 100
	lat, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 118)
	latSamples := make([]RTTSample, 0, n)
	for i := 0; i < n; i++ {
		s, err := lat.RoundTripDetailed(data)
		if err != nil {
			t.Fatal(err)
		}
		latSamples = append(latSamples, s)
	}

	str, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := str.Stream(StreamConfig{Packets: n, PayloadSize: 118, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range latSamples {
		if d := absDiff(latSamples[i].Total, r.RTT[i].Total); d > counterQuantum {
			t.Errorf("packet %d: latency %v vs stream %v (diff %v > %v)",
				i, latSamples[i].Total, r.RTT[i].Total, d, counterQuantum)
		}
	}
}

// The tentpole inequality: kick suppression (EVENT_IDX doorbells,
// batched TX kicks, coalesced interrupts) must not lose throughput
// against per-packet signalling, and must slash the doorbell count.
func TestStreamKickSuppressionThroughput(t *testing.T) {
	run := func(cfg NetConfig) StreamResult {
		t.Helper()
		ns, err := OpenNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ns.Stream(StreamConfig{Packets: 2000, PayloadSize: 64, Window: 16})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sup := run(NetConfig{Config: Config{Seed: 3}, UseEventIdx: true, TxKickBatch: 16, IRQCoalescePkts: 8})
	uns := run(NetConfig{Config: Config{Seed: 3}, ForceKicks: true})
	t.Logf("suppressed:   pps=%.0f doorbells=%d irqs=%d", sup.PPS, sup.Doorbells, sup.Interrupts)
	t.Logf("unsuppressed: pps=%.0f doorbells=%d irqs=%d", uns.PPS, uns.Doorbells, uns.Interrupts)
	if sup.PPS < uns.PPS {
		t.Errorf("suppression lost throughput: %.0f < %.0f PPS", sup.PPS, uns.PPS)
	}
	if sup.Doorbells >= uns.Doorbells {
		t.Errorf("suppression did not reduce doorbells: %d >= %d", sup.Doorbells, uns.Doorbells)
	}
	if sup.Interrupts >= uns.Interrupts {
		t.Errorf("coalescing did not reduce interrupts: %d >= %d", sup.Interrupts, uns.Interrupts)
	}
}

// Multi-queue streaming spreads packets across pairs and still
// completes every packet.
func TestStreamMultiQueue(t *testing.T) {
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 5}, UseEventIdx: true, QueuePairs: 2, TxKickBatch: 8, IRQCoalescePkts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := ns.QueuePairs(); got != 2 {
		t.Fatalf("driver activated %d queue pairs, want 2", got)
	}
	r, err := ns.Stream(StreamConfig{Packets: 1000, PayloadSize: 128, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Drops != 0 {
		t.Errorf("multi-queue stream dropped %d packets", r.Drops)
	}
	if r.OccupancyMax < 2 {
		t.Errorf("windowed stream never overlapped requests (occ max %d)", r.OccupancyMax)
	}
}

// The XDMA descriptor-list pipeline must beat serial window=1 streaming
// and actually overlap batches through the double-buffered regions.
func TestStreamXDMAPipelining(t *testing.T) {
	run := func(window int) StreamResult {
		t.Helper()
		xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		r, err := xs.Stream(StreamConfig{Packets: 800, PayloadSize: 64, Window: window})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := run(1)
	piped := run(16)
	t.Logf("window=1: %.0f PPS; window=16: %.0f PPS", serial.PPS, piped.PPS)
	if piped.PPS <= serial.PPS {
		t.Errorf("descriptor-list batching did not help: %.0f <= %.0f PPS", piped.PPS, serial.PPS)
	}
	if piped.OccupancyMax <= 16 {
		t.Errorf("double buffering never overlapped batches (occ max %d)", piped.OccupancyMax)
	}
	if piped.Doorbells >= serial.Doorbells {
		t.Errorf("batching did not reduce engine starts: %d >= %d", piped.Doorbells, serial.Doorbells)
	}
}

// An offered rate far below capacity paces the stream to that rate; an
// unreachable rate shows up as backpressure.
func TestStreamRatePacing(t *testing.T) {
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ns.Stream(StreamConfig{Packets: 100, PayloadSize: 64, Window: 1, RatePPS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if r.PPS > 5500 || r.PPS < 4000 {
		t.Errorf("paced stream ran at %.0f PPS, want about 5000", r.PPS)
	}
	if r.Backpressure != 0 {
		t.Errorf("stream below capacity reported %d backpressure events", r.Backpressure)
	}

	ns2, err := OpenNet(NetConfig{Config: Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ns2.Stream(StreamConfig{Packets: 100, PayloadSize: 64, Window: 1, RatePPS: 10e6})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Backpressure == 0 {
		t.Error("stream offered 10M PPS reported no backpressure")
	}
}

func TestStreamConfigValidation(t *testing.T) {
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := OpenXDMA(XDMAConfig{Config: Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		cfg  StreamConfig
		want string
	}{
		{"negative packets", StreamConfig{Packets: -1}, "packets"},
		{"negative payload", StreamConfig{PayloadSize: -4}, "payload"},
		{"negative window", StreamConfig{Window: -2}, "window"},
		{"negative rate", StreamConfig{RatePPS: -1}, "rate"},
	}
	for _, tc := range bad {
		if _, err := ns.Stream(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("net %s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
		if _, err := xs.Stream(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("xdma %s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// XDMA-specific resource limits.
	if _, err := xs.Stream(StreamConfig{Packets: 10, PayloadSize: 64, Window: 500}); err == nil {
		t.Error("window beyond the descriptor list limit not rejected")
	}
	if _, err := xs.Stream(StreamConfig{Packets: 300, PayloadSize: 1400, Window: 256}); err == nil {
		t.Error("stream larger than the card memory not rejected")
	}
}

// Stream results land in the telemetry registry alongside the layer
// instruments, so exporters see throughput runs too.
func TestStreamPublishesTelemetry(t *testing.T) {
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Stream(StreamConfig{Packets: 200, PayloadSize: 64, Window: 8}); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range ns.Registry().Snapshot() {
		found[s.Name] = true
		if s.Name == "stream.pps" && s.Value <= 0 {
			t.Errorf("stream.pps = %v, want > 0", s.Value)
		}
	}
	for _, name := range []string{"stream.packets", "stream.pps", "stream.goodput_bps", "stream.occupancy.max", "stream.doorbells"} {
		if !found[name] {
			t.Errorf("metric %q missing from registry snapshot", name)
		}
	}
}
