package fpgavirtio

import (
	"bytes"
	"strings"
	"testing"

	"fpgavirtio/internal/sim"
)

// TestDeferredKickDeadlockMiniature reproduces the deferred-kick
// deadlock in miniature: under TxKickBatch the doorbell for a lone
// packet stays batched, so send-then-receive without an intervening
// FlushTx parks every process — the exact pre-fix shape of pingOnce
// that the kickflush analyzer now flags statically (see
// internal/analysis/kickflush/testdata/kick/kick.go, badPing).
func TestDeferredKickDeadlockMiniature(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 64)

	open := func() *NetSession {
		ns, err := OpenNet(NetConfig{Config: Config{Seed: 11, Quiet: true}, TxKickBatch: 8})
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}

	// Pre-fix shape: enqueue, then block on the reply. The device never
	// sees the packet, so the simulation deadlocks.
	ns := open()
	err := ns.run(func(p *sim.Proc) error {
		if err := ns.sock.SendTo(p, fpgaIP, echoPort, payload); err != nil {
			return err
		}
		_, _, _, err := ns.sock.RecvFrom(p)
		return err
	})
	if err == nil {
		t.Fatal("send-then-receive without FlushTx should deadlock under TxKickBatch")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected a deadlock error, got: %v", err)
	}

	// Fixed shape: flush the batched doorbell before blocking.
	ns = open()
	var echo []byte
	err = ns.run(func(p *sim.Proc) error {
		if err := ns.sock.SendTo(p, fpgaIP, echoPort, payload); err != nil {
			return err
		}
		ns.drv.FlushTx(p)
		got, _, _, err := ns.sock.RecvFrom(p)
		echo = got
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echo, payload) {
		t.Fatal("echo mismatch after flush")
	}
}

// TestBurstFlushesBatchedTail pins the Burst fix: a burst smaller than
// the kick batch leaves every packet unkicked at the end of the send
// loop, and the drain loop would wait forever without the flush.
func TestBurstFlushesBatchedTail(t *testing.T) {
	ns, err := OpenNet(NetConfig{Config: Config{Seed: 12, Quiet: true}, TxKickBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ns.Burst(3, 128)
	if err != nil {
		t.Fatalf("burst below the kick batch deadlocked: %v", err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("burst elapsed = %v", res.Elapsed)
	}
}

// TestXmitRingFullFlushesAndWakes pins the ring-full transmit fix: with
// the kick batch larger than the TX ring, the ring fills with chains
// the device has never been told about. The stalled Xmit must flush the
// batched doorbell and take a TX completion interrupt to make progress;
// before the fix this parked the transmitter forever.
func TestXmitRingFullFlushesAndWakes(t *testing.T) {
	ns, err := OpenNet(NetConfig{
		Config:      Config{Seed: 13, Quiet: true},
		QueueSize:   8,
		RXBuffers:   8,
		TxKickBatch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ns.Burst(10, 64)
	if err != nil {
		t.Fatalf("burst past the TX ring size deadlocked: %v", err)
	}
	if res.Doorbells == 0 {
		t.Fatal("ring-full path rang no doorbell")
	}
}
