package fpgavirtio

import (
	"fpgavirtio/internal/sim"
)

// TraceEvent is one executed simulation event: a TLP arrival, an engine
// step, an interrupt, a wakeup. AtNanos is the absolute simulated
// timestamp in nanoseconds.
type TraceEvent struct {
	AtNanos int64
	Name    string
}

func convertTrace(records []sim.TraceRecord) []TraceEvent {
	out := make([]TraceEvent, len(records))
	for i, r := range records {
		ns := int64(r.At / sim.Time(sim.Nanosecond))
		out[i] = TraceEvent{AtNanos: ns, Name: r.Name}
	}
	return out
}

// TraceNetPing boots a VirtIO-net session and records every simulation
// event of a single echo round trip.
func TraceNetPing(cfg NetConfig, payload int) ([]TraceEvent, error) {
	ns, err := OpenNet(cfg)
	if err != nil {
		return nil, err
	}
	tr := &sim.RecordingTracer{Max: 100000}
	ns.s.SetTracer(tr)
	_, _, err = ns.Ping(make([]byte, payload))
	ns.s.SetTracer(nil)
	if err != nil {
		return nil, err
	}
	return convertTrace(tr.Records), nil
}

// TraceXDMARoundTrip boots a vendor-path session and records every
// simulation event of a single write()+read() round trip.
func TraceXDMARoundTrip(cfg XDMAConfig, bytes int) ([]TraceEvent, error) {
	xs, err := OpenXDMA(cfg)
	if err != nil {
		return nil, err
	}
	tr := &sim.RecordingTracer{Max: 100000}
	xs.s.SetTracer(tr)
	_, err = xs.RoundTrip(make([]byte, bytes))
	xs.s.SetTracer(nil)
	if err != nil {
		return nil, err
	}
	return convertTrace(tr.Records), nil
}
