package fpgavirtio

import (
	"fmt"
	"io"

	"fpgavirtio/internal/sim"
	"fpgavirtio/internal/telemetry"
)

// TraceEvent is one executed simulation event: a TLP arrival, an engine
// step, an interrupt, a wakeup. AtNanos is the absolute simulated
// timestamp in nanoseconds.
type TraceEvent struct {
	AtNanos int64
	Name    string
}

// SpanEvent is one closed telemetry span: an interval of work
// attributed to a layer of the testbed.
type SpanEvent struct {
	Layer      string
	Name       string
	StartNanos int64
	EndNanos   int64
}

// Trace is the full observability capture of one operation: the flat
// event log plus the layer-attributed spans, with truncation made
// explicit.
type Trace struct {
	Events []TraceEvent
	Spans  []SpanEvent
	// DroppedEvents counts flat events lost to the tracer's cap; a
	// non-zero value means Events is incomplete.
	DroppedEvents int
	// OpenSpans counts spans begun but never closed during the capture.
	OpenSpans int

	spans    []telemetry.Span // picosecond resolution, for Chrome export
	instants []telemetry.Instant
}

// maxTraceEvents caps a capture's flat event log.
const maxTraceEvents = 100000

func convertTrace(records []sim.TraceRecord) []TraceEvent {
	out := make([]TraceEvent, len(records))
	for i, r := range records {
		ns := int64(r.At / sim.Time(sim.Nanosecond))
		out[i] = TraceEvent{AtNanos: ns, Name: r.Name}
	}
	return out
}

func buildTrace(tr *sim.RecordingTracer, rec *telemetry.Recorder) *Trace {
	spans := rec.Spans()
	t := &Trace{
		Events:        convertTrace(tr.Records),
		Spans:         make([]SpanEvent, len(spans)),
		DroppedEvents: tr.Dropped(),
		OpenSpans:     len(rec.OpenSpans()),
		spans:         spans,
		instants:      make([]telemetry.Instant, len(tr.Records)),
	}
	for i, sp := range spans {
		t.Spans[i] = SpanEvent{
			Layer:      sp.Layer,
			Name:       sp.Name,
			StartNanos: int64(sp.Start / sim.Time(sim.Nanosecond)),
			EndNanos:   int64(sp.End / sim.Time(sim.Nanosecond)),
		}
	}
	for i, r := range tr.Records {
		t.instants[i] = telemetry.Instant{Name: r.Name, At: int64(r.At)}
	}
	return t
}

// Layers lists the distinct span layers present in the trace, in
// display order.
func (t *Trace) Layers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range telemetry.CanonicalLayers {
		for _, sp := range t.spans {
			if sp.Layer == l && !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	for _, sp := range t.spans {
		if !seen[sp.Layer] {
			seen[sp.Layer] = true
			out = append(out, sp.Layer)
		}
	}
	return out
}

// FilterLayers returns a copy of the trace keeping only spans of the
// named layers. Flat events and instants are kept.
func (t *Trace) FilterLayers(layers ...string) *Trace {
	want := make(map[string]bool, len(layers))
	for _, l := range layers {
		want[l] = true
	}
	out := &Trace{
		Events:        t.Events,
		DroppedEvents: t.DroppedEvents,
		OpenSpans:     t.OpenSpans,
		instants:      t.instants,
	}
	for i, sp := range t.spans {
		if want[sp.Layer] {
			out.spans = append(out.spans, sp)
			out.Spans = append(out.Spans, t.Spans[i])
		}
	}
	return out
}

// CriticalPath analyzes the traced operation's blocking chain: the
// partition of the app span's window by the innermost active span,
// attributing every nanosecond of the round trip to one layer. Errors
// when the capture holds no app-layer span (e.g. after FilterLayers
// dropped it).
func (t *Trace) CriticalPath() (*telemetry.CriticalPath, error) {
	return telemetry.AnalyzeCriticalPath(t.spans)
}

// WriteChrome writes the trace as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: one process track
// per layer, plus a "sim-events" track of flat-event instants.
func (t *Trace) WriteChrome(w io.Writer) error {
	return telemetry.WriteChromeTrace(w, t.spans, t.instants)
}

// TraceNet boots a VirtIO-net session and captures every simulation
// event and telemetry span of a single echo round trip.
func TraceNet(cfg NetConfig, payload int) (*Trace, error) {
	ns, err := OpenNet(cfg)
	if err != nil {
		return nil, err
	}
	tr := &sim.RecordingTracer{Max: maxTraceEvents}
	rec := telemetry.NewRecorder(0)
	ns.s.SetTracer(tr)
	ns.s.SetSpanSink(rec)
	_, _, err = ns.Ping(make([]byte, payload))
	ns.s.SetTracer(nil)
	ns.s.SetSpanSink(nil)
	if err != nil {
		return nil, err
	}
	return buildTrace(tr, rec), nil
}

// TraceXDMA boots a vendor-path session and captures every simulation
// event and telemetry span of a single write()+read() round trip.
func TraceXDMA(cfg XDMAConfig, nbytes int) (*Trace, error) {
	xs, err := OpenXDMA(cfg)
	if err != nil {
		return nil, err
	}
	tr := &sim.RecordingTracer{Max: maxTraceEvents}
	rec := telemetry.NewRecorder(0)
	xs.s.SetTracer(tr)
	xs.s.SetSpanSink(rec)
	_, err = xs.RoundTrip(make([]byte, nbytes))
	xs.s.SetTracer(nil)
	xs.s.SetSpanSink(nil)
	if err != nil {
		return nil, err
	}
	return buildTrace(tr, rec), nil
}

// TraceNetPing boots a VirtIO-net session and records every simulation
// event of a single echo round trip. It returns an error if the
// capture was truncated by the tracer's event cap.
func TraceNetPing(cfg NetConfig, payload int) ([]TraceEvent, error) {
	t, err := TraceNet(cfg, payload)
	if err != nil {
		return nil, err
	}
	if t.DroppedEvents > 0 {
		return t.Events, fmt.Errorf("fpgavirtio: trace truncated: %d events dropped", t.DroppedEvents)
	}
	return t.Events, nil
}

// TraceXDMARoundTrip boots a vendor-path session and records every
// simulation event of a single write()+read() round trip. It returns
// an error if the capture was truncated by the tracer's event cap.
func TraceXDMARoundTrip(cfg XDMAConfig, bytes int) ([]TraceEvent, error) {
	t, err := TraceXDMA(cfg, bytes)
	if err != nil {
		return nil, err
	}
	if t.DroppedEvents > 0 {
		return t.Events, fmt.Errorf("fpgavirtio: trace truncated: %d events dropped", t.DroppedEvents)
	}
	return t.Events, nil
}
